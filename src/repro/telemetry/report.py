"""Terminal rendering of telemetry exports: summaries and ASCII charts.

Operates on the plain export dict (``Telemetry.as_dict()`` or
``export.load_jsonl``), so the same renderer serves the live
``repro run --telemetry`` path and the offline
``repro telemetry report|show`` commands.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from .registry import Histogram, MetricsRegistry
from .series import TimeSeries

__all__ = ["render_report", "render_chart", "chartable_columns"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def _fmt(value: float) -> str:
    value = float(value)
    if value.is_integer() and abs(value) < 1e15:
        return f"{int(value):,}"
    return f"{value:,.3f}"


def render_report(data: Mapping) -> str:
    """Top-line metric summary: meta, counters, gauges, histograms, profile."""
    lines: list[str] = []
    meta = data.get("meta") or {}
    head = ", ".join(f"{k}={meta[k]}" for k in sorted(meta))
    lines.append(f"telemetry: {head}" if head else "telemetry:")
    series = data.get("series")
    if series and series.get("rows"):
        rows = series["rows"]
        lines.append(
            f"samples: {len(rows)} x {len(series['columns'])} columns, "
            f"t = {_fmt(rows[0][0])} .. {_fmt(rows[-1][0])} s"
        )
        bb_cols = [c for c in series["columns"] if c.startswith("bb.")]
        if bb_cols:
            ts = TimeSeries.from_dict(series)
            lines.append("")
            lines.append(f"{'burst buffer':<28} {'last':>14} {'max':>14}")
            for col in bb_cols:
                values = ts.column(col)
                lines.append(
                    f"{col:<28} {_fmt(values[-1]):>14} "
                    f"{_fmt(float(values.max())):>14}"
                )
    registry = MetricsRegistry.from_dict(data.get("registry") or {})
    counters = [m for m in registry if m.kind == "counter" and m.value]
    if counters:
        lines.append("")
        lines.append(f"{'counter':<42} {'value':>16}")
        for metric in counters:
            label = metric.name + (
                "{" + ",".join(f"{k}={v}" for k, v in metric.labels) + "}"
                if metric.labels
                else ""
            )
            lines.append(f"{label:<42} {_fmt(metric.value):>16}")
    gauges = [m for m in registry if m.kind == "gauge" and m.value]
    if gauges:
        lines.append("")
        lines.append(f"{'gauge':<42} {'value':>16}")
        for metric in gauges:
            label = metric.name + (
                "{" + ",".join(f"{k}={v}" for k, v in metric.labels) + "}"
                if metric.labels
                else ""
            )
            lines.append(f"{label:<42} {_fmt(metric.value):>16}")
    for metric in registry:
        if isinstance(metric, Histogram) and metric.count:
            lines.append("")
            lines.append(
                f"histogram {metric.name}: n={metric.count:,} "
                f"mean={metric.sum / metric.count:,.1f} "
                f"p50<={_fmt(metric.quantile(0.5))} p95<={_fmt(metric.quantile(0.95))}"
            )
            for bucket, count in metric.nonzero_buckets().items():
                upper = Histogram.bucket_upper(bucket)
                bar = "#" * max(1, round(40 * count / metric.count))
                lines.append(f"  < {upper:>12,}  {count:>8,}  {bar}")
    profile = data.get("profile")
    if profile:
        lines.append("")
        lines.append(f"{'profile section':<24} {'seconds':>10} {'calls':>8}")
        # Section names are nested paths ("simulate/telemetry.sample");
        # render them as an indented tree, longest-first at each level.
        children: dict[str, list[str]] = {}
        for path in profile:
            parent, sep, _ = path.rpartition("/")
            children.setdefault(parent if sep else "", []).append(path)

        def emit(parent: str, depth: int) -> None:
            for path in sorted(children.get(parent, ()),
                               key=lambda p: -profile[p]["seconds"]):
                rec = profile[path]
                label = "  " * depth + path.rpartition("/")[2]
                lines.append(
                    f"{label:<24} {rec['seconds']:>10.6f} {rec['count']:>8}"
                )
                emit(path, depth + 1)

        emit("", 0)
    return "\n".join(lines)


def chartable_columns(columns: Sequence[str]) -> list[str]:
    """Every column except the time axis."""
    return [c for c in columns if c != "time_s"]


def render_chart(
    series: TimeSeries,
    column: str,
    width: int = 72,
    height: int = 8,
    label: Optional[str] = None,
) -> str:
    """ASCII time-series chart of one column (downsampled to ``width``)."""
    values = series.column(column)
    if len(values) == 0:
        return f"{column}: (no samples)"
    times = series.column("time_s") if "time_s" in series.columns else None
    # Downsample by bucket-max so short spikes stay visible.
    n = len(values)
    width = min(width, n)
    buckets = []
    for i in range(width):
        lo = i * n // width
        hi = max(lo + 1, (i + 1) * n // width)
        buckets.append(float(values[lo:hi].max()))
    vmin = min(buckets)
    vmax = max(buckets)
    span = vmax - vmin
    lines = [f"{label or column}  min={_fmt(vmin)} max={_fmt(vmax)}"]
    if span == 0:
        # A constant series is still a signal: draw a mid-level bar so
        # it reads as "level held" rather than an empty/zero chart.
        lines.append(f"{vmin:>12.6g} |" + "▄" * width)
    else:
        levels = height * (len(_BLOCKS) - 1)
        scaled = [round((v - vmin) / span * levels) for v in buckets]
        for row in range(height - 1, -1, -1):
            base = row * (len(_BLOCKS) - 1)
            cells = []
            for s in scaled:
                idx = min(max(s - base, 0), len(_BLOCKS) - 1)
                cells.append(_BLOCKS[idx])
            axis = f"{vmin + span * (row + 1) / height:>12.6g} |"
            lines.append(axis + "".join(cells))
    if times is not None and len(times):
        pad = " " * 14
        left = f"{float(times[0]):.6g}"
        right = f"t = {float(times[-1]):.6g} s"
        gap = max(1, width - len(left) - len(right))
        lines.append(pad + left + " " * gap + right)
    return "\n".join(lines)
