"""Labeled metric primitives: counters, gauges, log2-bucket histograms.

The registry is the *aggregate* side of telemetry: hot paths increment
plain attributes (see :mod:`repro.telemetry.runtime`), and at sampling /
finalize time those raw values are folded into named, labeled metrics
that exporters understand.  Everything here is mergeable in the style of
:meth:`repro.ppfs.cache.CacheStats.merge`, so per-run registries from a
campaign can be combined into one fleet view:

* ``Counter.merge`` adds values;
* ``Histogram.merge`` adds bucket-wise;
* ``Gauge.merge`` keeps the maximum (gauges snapshot level state, and
  "worst observed" is the useful cross-run aggregate).

Histogram buckets are **fixed log2 buckets**: an observation ``v`` lands
in bucket ``i = max(0, ceil(log2(v+1)))`` — computed as
``int(v).bit_length()`` — i.e. bucket ``i`` covers ``[2**(i-1), 2**i)``
with bucket 0 collecting non-positive values.  Fixed buckets are what
makes the merge law exact: two histograms always share bucket edges.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "NBUCKETS"]

#: Number of log2 buckets; bucket 63 covers values up to 2**63-1, far
#: beyond any byte count the simulator produces.
NBUCKETS = 64

LabelItems = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count (float-valued: byte totals fit)."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def merge(self, other: "Counter") -> "Counter":
        self.value += other.value
        return self

    def as_dict(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels), "value": self.value}


class Gauge:
    """Level measurement (queue depth, backlog bytes, in-flight count)."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def merge(self, other: "Gauge") -> "Gauge":
        if other.value > self.value:
            self.value = other.value
        return self

    def as_dict(self) -> dict:
        return {"name": self.name, "labels": dict(self.labels), "value": self.value}


class Histogram:
    """Fixed log2-bucket histogram of non-negative observations."""

    __slots__ = ("name", "labels", "counts", "sum")
    kind = "histogram"

    def __init__(self, name: str, labels: LabelItems = ()):
        self.name = name
        self.labels = labels
        self.counts = [0] * NBUCKETS
        self.sum: float = 0

    def observe(self, value: float) -> None:
        # int.bit_length() is the whole bucketing function: kept minimal
        # because the I/O-node request path calls this per request.
        # The total count is derived from the buckets (see :attr:`count`)
        # rather than maintained here — one less store per observation.
        i = int(value).bit_length() if value > 0 else 0
        if i >= NBUCKETS:
            i = NBUCKETS - 1
        self.counts[i] += 1
        self.sum += value

    @property
    def count(self) -> int:
        """Total observations — exact, derived from the fixed buckets."""
        return sum(self.counts)

    @staticmethod
    def bucket_upper(i: int) -> int:
        """Exclusive upper edge of bucket ``i`` (``2**i``; bucket 0 holds <= 0)."""
        return 1 << i if i else 1

    def nonzero_buckets(self) -> Dict[int, int]:
        return {i: c for i, c in enumerate(self.counts) if c}

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper edge of the bucket holding it."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target and c:
                return float(self.bucket_upper(i))
        return float(self.bucket_upper(NBUCKETS - 1))

    def merge(self, other: "Histogram") -> "Histogram":
        for i, c in enumerate(other.counts):
            if c:
                self.counts[i] += c
        self.sum += other.sum
        return self

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "count": self.count,
            "sum": self.sum,
            "buckets": {str(i): c for i, c in self.nonzero_buckets().items()},
        }


class MetricsRegistry:
    """Get-or-create store of labeled metrics, keyed on (name, labels).

    Iteration yields metrics in sorted (name, labels) order so every
    export of an equal registry is byte-identical.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelItems], object] = {}

    def _get(self, cls, name: str, labels: Mapping[str, object]):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, key[1])
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r}{dict(key[1])} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self._get(Histogram, name, labels)

    def get(self, name: str, **labels: object) -> Optional[object]:
        return self._metrics.get((name, _label_key(labels)))

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[object]:
        for key in sorted(self._metrics):
            yield self._metrics[key]

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into this registry (kind-wise merge laws)."""
        for key, metric in other._metrics.items():
            mine = self._metrics.get(key)
            if mine is None:
                fresh = type(metric)(metric.name, key[1])
                fresh.merge(metric)
                self._metrics[key] = fresh
            else:
                if type(mine) is not type(metric):
                    raise TypeError(
                        f"cannot merge {metric.kind} into {mine.kind} for {key[0]!r}"
                    )
                mine.merge(metric)
        return self

    def as_dict(self) -> dict:
        """Exporter-facing snapshot (see also :meth:`from_dict`)."""
        out: dict = {"counters": [], "gauges": [], "histograms": []}
        for metric in self:
            out[metric.kind + "s"].append(metric.as_dict())
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "MetricsRegistry":
        reg = cls()
        for rec in data.get("counters", ()):
            reg.counter(rec["name"], **rec.get("labels", {})).value = rec["value"]
        for rec in data.get("gauges", ()):
            reg.gauge(rec["name"], **rec.get("labels", {})).value = rec["value"]
        for rec in data.get("histograms", ()):
            hist = reg.histogram(rec["name"], **rec.get("labels", {}))
            hist.sum = rec["sum"]
            for bucket, count in rec.get("buckets", {}).items():
                hist.counts[int(bucket)] = count
        return reg
