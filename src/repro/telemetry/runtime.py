"""The telemetry runtime: live counters, attach/sample/finalize lifecycle.

Split of responsibilities:

* :class:`LiveCounters` — a slotted bag of plain numeric attributes that
  hot paths increment behind a single ``is not None`` check.  Attribute
  adds on a slotted object are the cheapest push hook Python offers; the
  disabled path costs exactly one attribute load + identity test.
* :class:`Telemetry` — owns the registry, time-series buffer, sampler,
  and profiler; wires components up in :meth:`attach`, pulls per-sample
  state in :meth:`_sample`, and folds everything into the
  :class:`~repro.telemetry.registry.MetricsRegistry` in :meth:`finalize`.

Sampling is *pull-based*: the sampler reads counters the simulator
already maintains (``IONode.busy_time``, ``CacheStats`` …) plus the live
push counters.  It consumes no RNG draws and never reorders application
events, so traces stay byte-identical with telemetry on or off.
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..machine.raid import STATE_CODES
from ..util.validation import check_positive
from .profiler import RunProfiler
from .registry import MetricsRegistry
from .sampler import Sampler
from .series import TimeSeries

__all__ = ["LiveCounters", "Telemetry", "DEFAULT_CADENCE_S"]

#: Default sampling cadence in simulated seconds.  Paper-scale runs span
#: thousands of simulated seconds, so this yields several hundred samples
#: while keeping measured ESCAT overhead below the 5% acceptance budget
#: (see benchmarks/bench_telemetry_overhead.py and docs/OBSERVABILITY.md).
DEFAULT_CADENCE_S = 10.0


class LiveCounters:
    """Plain numeric fields incremented by the instrumentation hooks."""

    __slots__ = (
        "reads",
        "writes",
        "seeks",
        "opens",
        "areads",
        "read_bytes",
        "write_bytes",
        "mesh_msgs",
        "mesh_bytes",
        "retries",
        "prefetch_inflight",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class Telemetry:
    """One run's worth of live observability.

    Lifecycle: construct → :meth:`attach` (machine + filesystem) →
    :meth:`start` → simulation runs → :meth:`finalize` → export/report.
    The :class:`~repro.core.experiment.Experiment` harness drives all of
    it when its ``telemetry`` field is set.
    """

    def __init__(self, cadence_s: float = DEFAULT_CADENCE_S):
        check_positive(cadence_s, "cadence_s")
        self.cadence_s = float(cadence_s)
        self.live = LiveCounters()
        self.registry = MetricsRegistry()
        self.profiler = RunProfiler()
        self.series: Optional[TimeSeries] = None
        self.sampler: Optional[Sampler] = None
        self.meta: dict = {}
        self._machine = None
        self._fs = None
        self._ppfs = None
        self._bb = None
        self._finalized = False

    # -- lifecycle -----------------------------------------------------------
    def attach(self, machine, fs) -> "Telemetry":
        """Install push hooks and build the sampling column layout."""
        with self.profiler.section("telemetry.attach"):
            live = self.live
            machine.mesh.telem = live
            # Bound method, not the histogram: the serve loop then pays one
            # call with no extra attribute lookup per request.
            request_hist = self.registry.histogram("ionode.request_bytes")
            for ionode in machine.ionodes:
                ionode._telem = request_hist.observe
            # InstrumentedPFS delegates attribute access to the wrapped fs
            # methods, so hooking the inner PFS covers both spellings.
            inner = getattr(fs, "fs", fs)
            inner.telemetry = live
            self._machine = machine
            self._fs = inner
            # Policy-layer sections only exist on PPFS.
            self._ppfs = inner if hasattr(inner, "_server_caches") else None
            # Burst-buffer columns only exist on machines with the tier.
            self._bb = getattr(machine, "burstbuffer", None)
            self.series = TimeSeries(self._columns())
            self.sampler = Sampler(machine.env, self.cadence_s, self._sample)
            self.meta.setdefault("cadence_s", self.cadence_s)
            self.meta.setdefault("ionodes", len(machine.ionodes))
            self.meta.setdefault(
                "filesystem", "ppfs" if self._ppfs is not None else "pfs"
            )
        return self

    def start(self) -> None:
        if self.sampler is None:
            raise RuntimeError("attach() must run before start()")
        self.sampler.start()

    # -- sampling ------------------------------------------------------------
    def _columns(self) -> List[str]:
        cols = [
            "time_s",
            "pfs.reads",
            "pfs.writes",
            "pfs.seeks",
            "pfs.opens",
            "pfs.read_bytes",
            "pfs.write_bytes",
            "pfs.retries",
            "mesh.messages",
            "mesh.bytes",
            "disk.requests",
            "disk.seek_bytes",
        ]
        for i in range(len(self._machine.ionodes)):
            cols += [
                f"ionode{i}.queue",
                f"ionode{i}.busy",
                f"ionode{i}.busy_s",
                f"ionode{i}.bytes",
                f"raid{i}.state",
            ]
        if self._ppfs is not None:
            cols += [
                "cache.blocks",
                "cache.hit_rate",
                "server_cache.blocks",
                "server_cache.hit_rate",
                "writebehind.backlog_bytes",
                "writebehind.inflight",
                "prefetch.inflight",
            ]
        if self._bb is not None:
            cols += [
                "bb.occupancy_bytes",
                "bb.absorbed_bytes",
                "bb.drained_bytes",
                "bb.stalls",
                "bb.stall_s",
                "bb.drain_lag_s",
            ]
        return cols

    def _sample(self, now: float) -> None:
        live = self.live
        state_codes = STATE_CODES
        disk_requests = 0
        disk_seek_bytes = 0
        tail: list = []
        push = tail.append
        for ionode in self._machine.ionodes:
            array = ionode.array
            disk_requests += ionode.requests_served
            disk_seek_bytes += array._arm.seek_bytes
            push(ionode.queue_length)
            push(1.0 if ionode.busy else 0.0)
            push(ionode.busy_time)
            push(ionode.bytes_served)
            push(state_codes[array.state])
        row = [
            now,
            live.reads,
            live.writes,
            live.seeks,
            live.opens,
            live.read_bytes,
            live.write_bytes,
            live.retries,
            live.mesh_msgs,
            live.mesh_bytes,
            disk_requests,
            disk_seek_bytes,
        ]
        row += tail
        push = row.append
        ppfs = self._ppfs
        if ppfs is not None:
            blocks = hits = misses = 0
            for cache in ppfs._caches.values():
                blocks += len(cache)
                stats = cache.stats
                hits += stats.hits
                misses += stats.misses
            row += [blocks, hits / (hits + misses) if hits + misses else 0.0]
            blocks = hits = misses = 0
            for cache in ppfs._server_caches.values():
                blocks += len(cache)
                stats = cache.stats
                hits += stats.hits
                misses += stats.misses
            row += [blocks, hits / (hits + misses) if hits + misses else 0.0]
            wb = ppfs.writeback
            if wb is not None:
                row += [wb.backlog_bytes(), wb.inflight_batches]
            else:
                row += [0, 0]
            push(live.prefetch_inflight)
        bb = self._bb
        if bb is not None:
            row += [
                bb.occupancy_bytes,
                bb.bytes_absorbed,
                bb.bytes_drained,
                bb.stalls,
                bb.stall_s,
                bb.oldest_age_s(),
            ]
        self.series.append(row)

    # -- finalization ----------------------------------------------------------
    def finalize(self) -> "Telemetry":
        """Fold live + component state into the registry (idempotent)."""
        if self._finalized:
            return self
        self._finalized = True
        with self.profiler.section("telemetry.finalize"):
            reg = self.registry
            live = self.live
            for name, value in (
                ("pfs.reads", live.reads),
                ("pfs.writes", live.writes),
                ("pfs.seeks", live.seeks),
                ("pfs.opens", live.opens),
                ("pfs.areads", live.areads),
                ("pfs.read_bytes", live.read_bytes),
                ("pfs.write_bytes", live.write_bytes),
                ("pfs.retries", live.retries),
                ("mesh.messages", live.mesh_msgs),
                ("mesh.bytes", live.mesh_bytes),
            ):
                reg.counter(name).value = value
            machine = self._machine
            if machine is not None:
                # Disk-layer totals come from component statistics the
                # machine maintains unconditionally, not from push hooks.
                reg.counter("disk.requests").value = sum(
                    ionode.requests_served for ionode in machine.ionodes
                )
                reg.counter("disk.seek_bytes").value = sum(
                    ionode.array._arm.seek_bytes for ionode in machine.ionodes
                )
                for ionode in machine.ionodes:
                    node = str(ionode.index)
                    reg.counter("ionode.requests_served", node=node).value = (
                        ionode.requests_served
                    )
                    reg.counter("ionode.bytes_served", node=node).value = (
                        ionode.bytes_served
                    )
                    reg.gauge("ionode.busy_s", node=node).set(ionode.busy_time)
                    if machine.env.now > 0:
                        reg.gauge("ionode.utilization", node=node).set(
                            ionode.busy_time / machine.env.now
                        )
            ppfs = self._ppfs
            if ppfs is not None:
                for level, stats in (
                    ("client", ppfs.cache_stats()),
                    ("server", ppfs.server_cache_stats()),
                ):
                    for name, value in stats.as_dict().items():
                        reg.counter(f"cache.{name}", level=level).value = value
                wb = ppfs.writeback
                if wb is not None:
                    reg.counter("writebehind.writes_submitted").value = (
                        wb.writes_submitted
                    )
                    reg.counter("writebehind.bytes_submitted").value = (
                        wb.bytes_submitted
                    )
                    reg.counter("writebehind.transfers_issued").value = (
                        wb.transfers_issued
                    )
                    reg.counter("writebehind.bytes_flushed").value = wb.bytes_flushed
                counts_fn = getattr(ppfs.prefetcher, "classification_counts", None)
                if counts_fn is not None:
                    for kind, n in sorted(counts_fn().items()):
                        reg.counter("prefetch.streams", pattern=kind).value = n
            bb = self._bb
            if bb is not None:
                reg.counter("bb.appends").value = bb.appends
                reg.counter("bb.bytes_absorbed").value = bb.bytes_absorbed
                reg.counter("bb.bytes_drained").value = bb.bytes_drained
                reg.counter("bb.stalls").value = bb.stalls
                reg.counter("bb.fallback_writes").value = bb.fallback_writes
                reg.counter("bb.drain_failures").value = bb.drain_failures
                reg.gauge("bb.stall_s").set(bb.stall_s)
                reg.gauge("bb.max_occupancy_bytes").set(bb.max_occupancy_bytes)
                reg.gauge("bb.drain_lag_s").set(bb.max_drain_lag_s)
            sampler = self.sampler
            if sampler is not None:
                # The overhead accrued while the simulation ran, so file
                # it under the harness's simulate section, not finalize.
                self.profiler.add(
                    "simulate/telemetry.sample",
                    sampler.overhead_s,
                    max(sampler.samples, 1),
                )
                self.meta["samples"] = sampler.samples
        return self

    # -- summaries -------------------------------------------------------------
    def summary(self) -> dict:
        """Compact per-run summary (flows into campaign manifests)."""
        self.finalize()
        out = {
            "cadence_s": self.cadence_s,
            "samples": self.sampler.samples if self.sampler is not None else 0,
            "sampling_overhead_s": round(
                self.sampler.overhead_s if self.sampler is not None else 0.0, 6
            ),
            "counters": {
                metric.name: metric.value
                for metric in self.registry
                if metric.kind == "counter" and not metric.labels
            },
        }
        series = self.series
        if series is not None and len(series):
            queue_cols = [c for c in series.columns if c.endswith(".queue")]
            if queue_cols:
                out["max_queue"] = int(
                    max(float(series.column(c).max()) for c in queue_cols)
                )
            busy_cols = [c for c in series.columns if c.endswith(".busy")]
            if busy_cols:
                out["mean_busy_fraction"] = round(
                    sum(float(series.column(c).mean()) for c in busy_cols)
                    / len(busy_cols),
                    6,
                )
        return out

    def as_dict(self) -> dict:
        """Full export form (see :mod:`repro.telemetry.export`)."""
        self.finalize()
        return {
            "meta": dict(self.meta),
            "registry": self.registry.as_dict(),
            "profile": self.profiler.as_dict(),
            "series": self.series.as_dict() if self.series is not None else None,
        }
