"""Cadenced state sampler driven by the simulation clock.

The sampler is a chain of :class:`~repro.sim.core.Timeout` callbacks:
each firing snapshots component state (a *pull* — it reads counters and
queue lengths, consumes no RNG draws, and schedules nothing the
application can observe), then re-arms the next sample.  Every armed
timeout is registered as a kernel *background* event
(:attr:`Environment.background`), so ``Environment.run()`` still
terminates the moment the application drains: the trailing sample
timeout neither keeps the simulation alive nor advances the clock, and
it stays queued across sequential ``run()`` calls — multi-program
pipelines like HTF are sampled end to end by one sampler.

Determinism: sampler timeouts interleave with application events in the
kernel's total (time, seq) order, but since sampling is read-only the
application's event *content* is unchanged — traces stay byte-identical
with telemetry on or off (pinned by tests/test_telemetry.py).
"""

from __future__ import annotations

import time
from typing import Callable

from ..sim.core import Environment, Event, Timeout
from ..util.validation import check_positive

__all__ = ["Sampler"]


class Sampler:
    """Invoke ``sample_fn(now)`` every ``cadence_s`` simulated seconds."""

    __slots__ = ("env", "cadence_s", "sample_fn", "samples", "overhead_s", "_clock", "_armed")

    def __init__(
        self,
        env: Environment,
        cadence_s: float,
        sample_fn: Callable[[float], None],
        clock: Callable[[], float] = time.perf_counter,
    ):
        check_positive(cadence_s, "cadence_s")
        self.env = env
        self.cadence_s = float(cadence_s)
        self.sample_fn = sample_fn
        #: Samples taken so far.
        self.samples = 0
        #: Wall-clock seconds spent inside ``sample_fn`` (self-profiling).
        self.overhead_s = 0.0
        self._clock = clock
        self._armed = False

    def start(self) -> None:
        """Arm the first sample one cadence from now."""
        if self._armed:
            return
        self._armed = True
        self._arm()

    def _arm(self) -> None:
        env = self.env
        Timeout(env, self.cadence_s).callbacks.append(self._fire)
        env.background += 1

    def _fire(self, _event: Event) -> None:
        self.env.background -= 1
        clock = self._clock
        t0 = clock()
        self.sample_fn(self.env.now)
        self.samples += 1
        self.overhead_s += clock() - t0
        self._arm()
