"""Telemetry exporters: JSONL, CSV, and Prometheus text exposition.

JSONL is the canonical lossless form — one JSON object per line with a
``kind`` tag (``meta``, ``metric``, ``profile``, ``sample``) so files
stream and concatenate naturally.  CSV covers the time series alone for
spreadsheet/pandas users.  The Prometheus text format covers the final
registry for scrape-style ingestion.  Floats survive JSONL and CSV
exactly: both encoders emit Python's shortest round-trip ``repr``, which
reconstructs the identical IEEE-754 double (pinned by the round-trip
tests in tests/test_telemetry.py).

All file writes go through :func:`repro.util.atomic_write_text`, so
parallel campaign workers can never interleave partial exports.
"""

from __future__ import annotations

import io
import json
from typing import Mapping, Optional

from ..util.io import atomic_write_text
from .registry import Histogram, MetricsRegistry, NBUCKETS
from .series import TimeSeries

__all__ = [
    "to_jsonl",
    "from_jsonl",
    "load_jsonl",
    "series_to_csv",
    "series_from_csv",
    "to_prometheus",
]


# -- JSONL -----------------------------------------------------------------
def to_jsonl(data: Mapping, path: Optional[str] = None) -> str:
    """Serialize a telemetry export dict (``Telemetry.as_dict()``) to
    JSONL text; write atomically when ``path`` is given."""
    lines = [json.dumps({"kind": "meta", **data.get("meta", {})}, sort_keys=True)]
    registry = data.get("registry") or {}
    for group in ("counters", "gauges", "histograms"):
        metric_type = group[:-1]
        for rec in registry.get(group, ()):
            lines.append(
                json.dumps({"kind": "metric", "type": metric_type, **rec}, sort_keys=True)
            )
    profile = data.get("profile")
    if profile:
        lines.append(json.dumps({"kind": "profile", "sections": profile}, sort_keys=True))
    series = data.get("series")
    if series is not None:
        lines.append(
            json.dumps({"kind": "columns", "columns": series["columns"]}, sort_keys=True)
        )
        for row in series["rows"]:
            lines.append(json.dumps({"kind": "sample", "row": row}))
    text = "\n".join(lines) + "\n"
    if path is not None:
        atomic_write_text(path, text)
    return text


def from_jsonl(text: str) -> dict:
    """Inverse of :func:`to_jsonl`: reconstruct the export dict."""
    meta: dict = {}
    registry: dict = {"counters": [], "gauges": [], "histograms": []}
    profile: dict = {}
    columns: list = []
    rows: list = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        kind = rec.pop("kind")
        if kind == "meta":
            meta = rec
        elif kind == "metric":
            registry[rec.pop("type") + "s"].append(rec)
        elif kind == "profile":
            profile = rec["sections"]
        elif kind == "columns":
            columns = rec["columns"]
        elif kind == "sample":
            rows.append(rec["row"])
        else:
            raise ValueError(f"unknown telemetry record kind {kind!r}")
    series = {"columns": columns, "rows": rows} if columns else None
    return {"meta": meta, "registry": registry, "profile": profile, "series": series}


def load_jsonl(path: str) -> dict:
    with open(path) as fh:
        return from_jsonl(fh.read())


# -- CSV -------------------------------------------------------------------
def series_to_csv(series: TimeSeries, path: Optional[str] = None) -> str:
    """Render the time series as CSV with exact float reprs."""
    out = io.StringIO()
    out.write(",".join(series.columns) + "\n")
    for row in series.rows:
        out.write(",".join(repr(float(x)) for x in row) + "\n")
    text = out.getvalue()
    if path is not None:
        atomic_write_text(path, text)
    return text


def series_from_csv(text: str) -> TimeSeries:
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValueError("empty CSV: no header row")
    series = TimeSeries(lines[0].split(","))
    for line in lines[1:]:
        series.append([float(x) for x in line.split(",")])
    return series


# -- Prometheus text exposition --------------------------------------------
def _prom_name(name: str) -> str:
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"repro_{cleaned}"


def _prom_labels(labels: Mapping[str, str], extra: Optional[tuple] = None) -> str:
    items = list(labels.items())
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in items)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    return repr(int(value)) if float(value).is_integer() else repr(float(value))


def to_prometheus(registry: MetricsRegistry, path: Optional[str] = None) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: list[str] = []
    typed: set[str] = set()
    for metric in registry:
        name = _prom_name(metric.name)
        if name not in typed:
            lines.append(f"# TYPE {name} {metric.kind}")
            typed.add(name)
        labels = dict(metric.labels)
        if isinstance(metric, Histogram):
            cumulative = 0
            for i in range(NBUCKETS):
                count = metric.counts[i]
                if not count:
                    continue
                cumulative += count
                upper = Histogram.bucket_upper(i)
                lines.append(
                    f"{name}_bucket{_prom_labels(labels, ('le', str(upper)))} {cumulative}"
                )
            lines.append(
                f"{name}_bucket{_prom_labels(labels, ('le', '+Inf'))} {metric.count}"
            )
            lines.append(f"{name}_sum{_prom_labels(labels)} {_format_value(metric.sum)}")
            lines.append(f"{name}_count{_prom_labels(labels)} {metric.count}")
        else:
            lines.append(f"{name}{_prom_labels(labels)} {_format_value(metric.value)}")
    text = "\n".join(lines) + "\n"
    if path is not None:
        atomic_write_text(path, text)
    return text
