"""Columnar time-series buffer for sampled telemetry.

Same storage discipline as :class:`repro.pablo.trace.Trace`: one
preallocated NumPy buffer grown by doubling, with a zero-copy view over
the filled prefix.  Rows are float64 — every sampled quantity (queue
depths, byte totals, utilization fractions, state codes) fits — and the
column names are fixed at construction, so append stays a bounds check
plus one slice assignment.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = ["TimeSeries"]

_INITIAL_CAPACITY = 256


class TimeSeries:
    """Append-only (n_samples, n_columns) float64 buffer with named columns."""

    __slots__ = ("columns", "_index", "_buffer", "_count", "_frozen")

    def __init__(self, columns: Sequence[str]):
        if not columns:
            raise ValueError("TimeSeries needs at least one column")
        if len(set(columns)) != len(columns):
            raise ValueError("TimeSeries column names must be unique")
        self.columns = tuple(columns)
        self._index = {name: i for i, name in enumerate(self.columns)}
        self._buffer = np.zeros((_INITIAL_CAPACITY, len(self.columns)), dtype=np.float64)
        self._count = 0
        self._frozen: np.ndarray | None = None

    def __len__(self) -> int:
        return self._count

    def append(self, row: Sequence[float]) -> None:
        """Append one sample; ``row`` must match the column order."""
        n = self._count
        if n == self._buffer.shape[0]:
            self._grow(n)
        self._buffer[n] = row
        self._count = n + 1
        self._frozen = None

    def _grow(self, need: int) -> None:
        capacity = self._buffer.shape[0]
        while capacity <= need:
            capacity *= 2
        grown = np.zeros((capacity, self._buffer.shape[1]), dtype=np.float64)
        grown[: self._count] = self._buffer[: self._count]
        self._buffer = grown

    @property
    def rows(self) -> np.ndarray:
        """Zero-copy view over the filled prefix."""
        if self._frozen is None:
            self._frozen = self._buffer[: self._count]
        return self._frozen

    def column(self, name: str) -> np.ndarray:
        """Zero-copy view of one column's samples."""
        return self.rows[:, self._index[name]]

    def content_hash(self) -> str:
        """SHA-256 over columns + row bytes: equal iff samples identical."""
        digest = hashlib.sha256()
        digest.update("\x1f".join(self.columns).encode())
        digest.update(np.ascontiguousarray(self.rows).tobytes())
        return digest.hexdigest()

    def as_dict(self) -> dict:
        """JSON-ready form; float64 -> Python float is exact, and
        ``json``'s shortest-repr float encoding round-trips exactly."""
        return {
            "columns": list(self.columns),
            "rows": [[float(x) for x in row] for row in self.rows],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "TimeSeries":
        series = cls(data["columns"])
        for row in data["rows"]:
            series.append(row)
        return series

    @classmethod
    def from_rows(cls, columns: Sequence[str], rows: Iterable[Sequence[float]]) -> "TimeSeries":
        series = cls(columns)
        for row in rows:
            series.append(row)
        return series
