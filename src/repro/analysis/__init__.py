"""Offline trace analysis: the paper's tables, figures and observations."""

from .checkpoint import CheckpointReport
from .classes import FileClassification, IOClass, classify_files
from .critical_path import (
    CriticalPathReport,
    OpAttribution,
    PhaseAttribution,
    critical_path,
)
from .diff import OpDelta, TraceDiff
from .cyclic import FileCycles, ReuseStats, detect_cycles, reuse_intervals
from .load import LoadReport, observed_load, predicted_load

from .file_access import FileAccess, FileAccessMap, ascii_access_map
from .operations import OperationTable, OpRow
from .patterns import PatternKind, PatternSummary, StreamPattern, classify_offsets
from .phases import Phase, detect_phases
from .report import CharacterizationReport
from .resilience import ResilienceReport
from .sizes import BUCKET_EDGES, BUCKET_LABELS, SizeTable, bucketize
from .stats import (
    Distribution,
    bimodality_coefficient,
    op_duration_distribution,
    op_size_distribution,
)
from .timeline import BurstAnalysis, Timeline, ascii_scatter

__all__ = [
    "CheckpointReport",
    "FileClassification",
    "IOClass",
    "classify_files",
    "CriticalPathReport",
    "OpAttribution",
    "PhaseAttribution",
    "critical_path",
    "OpDelta",
    "TraceDiff",
    "FileCycles",
    "ReuseStats",
    "detect_cycles",
    "reuse_intervals",
    "LoadReport",
    "observed_load",
    "predicted_load",
    "FileAccess",
    "FileAccessMap",
    "ascii_access_map",
    "OperationTable",
    "OpRow",
    "PatternKind",
    "PatternSummary",
    "StreamPattern",
    "classify_offsets",
    "Phase",
    "detect_phases",
    "CharacterizationReport",
    "ResilienceReport",
    "BUCKET_EDGES",
    "BUCKET_LABELS",
    "SizeTable",
    "bucketize",
    "Distribution",
    "bimodality_coefficient",
    "op_duration_distribution",
    "op_size_distribution",
    "BurstAnalysis",
    "Timeline",
    "ascii_scatter",
]
