"""Request-size distribution tables (paper Tables 2, 4, 6).

The paper buckets read and write request sizes into four ranges:
``< 4 KB``, ``4-64 KB``, ``64-256 KB`` and ``>= 256 KB``.  Reads include
both synchronous and asynchronous reads (Table 4 counts RENDER's async
reads in the Read row).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..pablo.events import Op
from ..pablo.trace import Trace
from ..util.units import KB

__all__ = ["BUCKET_EDGES", "BUCKET_LABELS", "SizeTable", "bucketize"]

#: Upper edges of the paper's size buckets (the last bucket is unbounded).
BUCKET_EDGES = (4 * KB, 64 * KB, 256 * KB)
BUCKET_LABELS = ("<4KB", "<64KB", "<256KB", ">=256KB")


def bucketize(sizes: np.ndarray) -> np.ndarray:
    """Counts per paper bucket for an array of request sizes.

    >>> bucketize(np.array([100, 5000, 70000, 300000]))
    array([1, 1, 1, 1])
    """
    edges = np.array(BUCKET_EDGES)
    idx = np.searchsorted(edges, sizes, side="right")
    return np.bincount(idx, minlength=4)[:4]


@dataclass(frozen=True)
class SizeRow:
    """Bucket counts for one operation class."""

    label: str
    buckets: tuple[int, int, int, int]

    @property
    def total(self) -> int:
        return sum(self.buckets)

    def format(self) -> str:
        cells = " ".join(f"{b:>10,}" for b in self.buckets)
        return f"{self.label:<8} {cells}"


class SizeTable:
    """Read/write size-bucket table for one trace."""

    HEADER = f"{'Op':<8} " + " ".join(f"{lbl:>10}" for lbl in BUCKET_LABELS)

    def __init__(self, trace: Trace):
        ev = trace.events
        if len(ev):
            read_mask = np.isin(ev["op"], [int(Op.READ), int(Op.AREAD)])
            write_mask = ev["op"] == int(Op.WRITE)
            read_counts = bucketize(ev["nbytes"][read_mask])
            write_counts = bucketize(ev["nbytes"][write_mask])
        else:
            read_counts = np.zeros(4, dtype=int)
            write_counts = np.zeros(4, dtype=int)
        self.read = SizeRow("Read", tuple(int(c) for c in read_counts))
        self.write = SizeRow("Write", tuple(int(c) for c in write_counts))

    def render(self, title: str = "") -> str:
        lines = []
        if title:
            lines.append(title)
        lines.append(self.HEADER)
        lines.append("-" * len(self.HEADER))
        lines.append(self.read.format())
        lines.append(self.write.format())
        return "\n".join(lines)

    def is_bimodal(self, row: str = "read") -> bool:
        """True when sizes cluster in non-adjacent buckets (paper's
        'bimodal' reads: small requests plus large requests)."""
        buckets = (self.read if row == "read" else self.write).buckets
        populated = [i for i, b in enumerate(buckets) if b > 0]
        return len(populated) >= 2 and populated[-1] - populated[0] >= 2
