"""Operation count/volume/time tables (paper Tables 1, 3, 5).

Builds, from a frozen trace, the per-operation summary the paper reports
for each application: operation count, data volume, total node time
(durations summed over all nodes), and percentage of total I/O time.
Seek rows report cumulative seek *distance* as their volume, matching
Table 5's accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..pablo.events import Op
from ..pablo.trace import Trace

__all__ = ["OpRow", "OperationTable"]

#: Order the paper lists operations in.
_ROW_ORDER = [Op.READ, Op.AREAD, Op.IOWAIT, Op.WRITE, Op.SEEK, Op.OPEN, Op.CLOSE, Op.LSIZE, Op.FLUSH]
#: Ops whose nbytes are data volume (seeks carry distance instead).
_DATA_OPS = {Op.READ, Op.AREAD, Op.WRITE}


@dataclass(frozen=True)
class OpRow:
    """One table row."""

    label: str
    count: int
    volume: int  # bytes (data) or distance (seek); 0 for control ops
    node_time_s: float
    pct_io_time: float

    def format(self) -> str:
        vol = f"{self.volume:,}" if self.volume else "-"
        return (
            f"{self.label:<12} {self.count:>10,} {vol:>16} "
            f"{self.node_time_s:>14,.2f} {self.pct_io_time:>9.2f}"
        )


class OperationTable:
    """Per-operation summary of one trace."""

    HEADER = (
        f"{'Operation':<12} {'Count':>10} {'Volume(B)':>16} "
        f"{'NodeTime(s)':>14} {'%IOTime':>9}"
    )

    def __init__(self, trace: Trace):
        ev = trace.events
        op_col = ev["op"] if len(ev) else np.array([], dtype="u1")
        # Resilience rows (Op.FAULT and up, from repro.faults) are
        # bookkeeping, not I/O operations: keep them out of the counts
        # and the %IOTime base.
        if len(ev) and (op_col >= int(Op.FAULT)).any():
            keep = op_col < int(Op.FAULT)
            ev = ev[keep]
            op_col = op_col[keep]
        self.total_time = float(ev["duration"].sum()) if len(ev) else 0.0
        self.rows: list[OpRow] = []

        total_count = int(len(ev))
        total_volume = 0
        for op in _ROW_ORDER:
            mask = op_col == int(op)
            count = int(mask.sum())
            if count == 0:
                continue
            sel = ev[mask]
            volume = int(sel["nbytes"].sum()) if op in _DATA_OPS or op is Op.SEEK else 0
            if op in _DATA_OPS:
                total_volume += volume
            node_time = float(sel["duration"].sum())
            pct = 100.0 * node_time / self.total_time if self.total_time else 0.0
            self.rows.append(OpRow(op.label, count, volume, node_time, pct))
        self.all_row = OpRow("All I/O", total_count, total_volume, self.total_time, 100.0 if self.rows else 0.0)

    def row(self, label: str) -> OpRow:
        """Fetch a row by its paper label ('Read', 'Seek', ...)."""
        if label == "All I/O":
            return self.all_row
        for r in self.rows:
            if r.label == label:
                return r
        return OpRow(label, 0, 0, 0.0, 0.0)

    def render(self, title: str = "") -> str:
        """Text rendering in the paper's layout."""
        lines = []
        if title:
            lines.append(title)
        lines.append(self.HEADER)
        lines.append("-" * len(self.HEADER))
        lines.append(self.all_row.format())
        for r in self.rows:
            lines.append(r.format())
        return "\n".join(lines)

    def read_volume_fraction(self) -> float:
        """Fraction of data volume moved by reads (paper: ESCAT 56 %)."""
        read_vol = self.row("Read").volume + self.row("AsynchRead").volume
        total = self.all_row.volume
        return read_vol / total if total else 0.0

    def time_fraction(self, *labels: str) -> float:
        """Combined share of I/O time for the given rows."""
        t = sum(self.row(label).node_time_s for label in labels)
        return t / self.total_time if self.total_time else 0.0
