"""Checkpoint analysis: cost per checkpoint, optimal interval, lost work.

Turns :class:`repro.apps.checkpoint.CheckpointStats` (live object or the
``as_dict`` form campaign metrics persist) into the checkpointing
literature's standard quantities:

* **checkpoint cost** δ — the application-visible seconds per completed
  dump (compress + seek + write + any burst-buffer stall);
* **Young's interval** τ* = sqrt(2 δ M) for a mean time between failures
  M — the first-order optimum balancing dump overhead against expected
  recomputation;
* an **overhead sweep** over candidate intervals using the first-order
  model overhead(τ) = δ/τ + τ/(2 M), the curve
  ``examples/checkpoint_sweep.py`` reproduces by simulation;
* **lost work**: restarts observed and the recomputed seconds they cost.

The report is pure arithmetic over recorded statistics — no simulation
state — so it works identically on a live run and on a campaign cache
entry.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

__all__ = ["CheckpointReport"]


class CheckpointReport:
    """Summary of one checkpointing run (see module docstring).

    Parameters
    ----------
    stats:
        A :class:`CheckpointStats` or its ``as_dict`` form.
    interval_s:
        The configured compute interval between checkpoints.
    burst_buffer:
        Optional ``BurstBuffer.stats_dict()`` to fold log behaviour
        (stall seconds, drain lag) into the report.
    """

    def __init__(
        self,
        stats,
        interval_s: float,
        burst_buffer: Optional[dict] = None,
    ):
        if isinstance(stats, dict):
            # Deferred: keeps the analysis package importable without
            # pulling the simulation stack (apps -> machine -> pfs).
            from ..apps.checkpoint import CheckpointStats

            stats = CheckpointStats.from_dict(stats)
        self.stats = stats
        self.interval_s = float(interval_s)
        self.burst_buffer = dict(burst_buffer) if burst_buffer else None

    # -- headline quantities ---------------------------------------------------
    @property
    def checkpoint_cost_s(self) -> float:
        """δ: mean application-visible seconds per completed checkpoint."""
        return self.stats.mean_cost_s

    @property
    def overhead_fraction(self) -> float:
        """Fraction of the run spent checkpointing instead of computing."""
        denom = self.interval_s + self.checkpoint_cost_s
        return self.checkpoint_cost_s / denom if denom else 0.0

    @property
    def lost_work_s(self) -> float:
        return self.stats.lost_work_s

    # -- interval models -------------------------------------------------------
    def young_interval(self, mtbf_s: float) -> float:
        """Young's first-order optimal interval: sqrt(2 δ MTBF)."""
        if mtbf_s <= 0:
            raise ValueError(f"mtbf_s must be > 0, got {mtbf_s}")
        return math.sqrt(2.0 * self.checkpoint_cost_s * mtbf_s)

    def model_overhead(self, interval_s: float, mtbf_s: float) -> float:
        """First-order overhead fraction: δ/τ + τ/(2 MTBF)."""
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        if mtbf_s <= 0:
            raise ValueError(f"mtbf_s must be > 0, got {mtbf_s}")
        return self.checkpoint_cost_s / interval_s + interval_s / (2.0 * mtbf_s)

    def optimal_interval_sweep(
        self, mtbf_s: float, intervals: Sequence[float]
    ) -> list[tuple[float, float]]:
        """(interval, modelled overhead fraction) rows, lowest overhead
        marking the model's cost-optimal interval among the candidates."""
        return [(float(t), self.model_overhead(t, mtbf_s)) for t in intervals]

    # -- presentation ----------------------------------------------------------
    def summary(self) -> dict:
        """Plain-dict form (JSON-friendly, deterministic key order)."""
        s = self.stats
        out = {
            "interval_s": self.interval_s,
            "checkpoints_taken": s.checkpoints_taken,
            "mean_cost_s": round(self.checkpoint_cost_s, 9),
            "total_cost_s": round(s.checkpoint_cost_s, 9),
            "overhead_fraction": round(self.overhead_fraction, 9),
            "bytes_written": s.bytes_written,
            "raw_bytes": s.raw_bytes,
            "restarts": s.restarts,
            "lost_work_s": round(s.lost_work_s, 9),
            "restore_bytes": s.restore_bytes,
        }
        if self.burst_buffer is not None:
            out["burst_buffer"] = dict(self.burst_buffer)
        return out

    def render(self, mtbf_s: Optional[float] = None) -> str:
        """Deterministic text report; ``mtbf_s`` adds the interval model."""
        s = self.stats
        lines = ["Checkpoint report", "================="]
        lines.append(
            f"Checkpoints: {s.checkpoints_taken} completed at "
            f"interval {self.interval_s:g}s"
        )
        lines.append(
            f"Cost: {self.checkpoint_cost_s:.4f}s mean per checkpoint "
            f"({s.checkpoint_cost_s:.4f}s total, "
            f"{100 * self.overhead_fraction:.2f}% overhead)"
        )
        ratio = s.bytes_written / s.raw_bytes if s.raw_bytes else 1.0
        lines.append(
            f"Volume: {s.bytes_written} B written"
            + (f" ({ratio:.3f} of raw after compression)" if ratio < 1.0 else "")
        )
        if s.restarts:
            lines.append(
                f"Restarts: {s.restarts}, {s.lost_work_s:.4f}s work lost, "
                f"{s.restore_bytes} B re-read"
            )
        else:
            lines.append("Restarts: none")
        bb = self.burst_buffer
        if bb is not None:
            lines.append(
                "Burst buffer: "
                f"{bb.get('bytes_absorbed', 0)} B absorbed, "
                f"{bb.get('stalls', 0)} stalls ({bb.get('stall_s', 0.0):.4f}s), "
                f"drain lag {bb.get('drain_lag_s', 0.0):.4f}s, "
                f"{bb.get('fallback_writes', 0)} fallback writes"
            )
        if mtbf_s is not None:
            tau = self.young_interval(mtbf_s)
            lines.append(
                f"Young's optimal interval at MTBF {mtbf_s:g}s: {tau:.2f}s "
                f"(modelled overhead {100 * self.model_overhead(tau, mtbf_s):.2f}%)"
            )
        return "\n".join(lines)
