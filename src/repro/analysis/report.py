"""Full per-application characterization report.

Assembles everything the paper reports for one application run: the
operation table, the size-bucket table, detected phases, per-stream
access-pattern classification, per-file access summaries, and headline
observations ("read-intensive", "seek-dominated", "bimodal sizes").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..pablo.events import Op
from ..pablo.trace import Trace
from .classes import FileClassification, classify_files
from .cyclic import detect_cycles, reuse_intervals
from .file_access import FileAccessMap
from .operations import OperationTable
from .patterns import PatternKind, PatternSummary
from .phases import Phase, detect_phases
from .sizes import SizeTable
from .stats import bimodality_coefficient, op_duration_distribution, op_size_distribution

__all__ = ["CharacterizationReport"]


@dataclass
class CharacterizationReport:
    """Everything we characterize about one traced run."""

    trace: Trace
    operations: OperationTable = field(init=False)
    sizes: SizeTable = field(init=False)
    phases: list[Phase] = field(init=False)
    patterns: PatternSummary = field(init=False)
    file_access: FileAccessMap = field(init=False)
    file_classes: dict[int, FileClassification] = field(init=False)
    phase_window_s: float = 20.0

    def __post_init__(self) -> None:
        self.operations = OperationTable(self.trace)
        self.sizes = SizeTable(self.trace)
        self.phases = detect_phases(self.trace, window_s=self.phase_window_s)
        self.patterns = PatternSummary(self.trace)
        self.file_access = FileAccessMap(self.trace)
        self.file_classes = classify_files(self.trace)

    # -- headline observations -------------------------------------------------
    def observations(self) -> list[str]:
        """The §5-§7 style one-liners, derived from the data."""
        out = []
        ops = self.operations
        rvf = ops.read_volume_fraction()
        out.append(f"reads move {100 * rvf:.0f}% of data volume")
        seek_write = ops.time_fraction("Seek", "Write")
        if seek_write > 0.5:
            out.append(f"seeks+writes consume {100 * seek_write:.0f}% of I/O time")
        open_frac = ops.time_fraction("Open")
        if open_frac > 0.3:
            out.append(f"opens consume {100 * open_frac:.0f}% of I/O time")
        wait_frac = ops.time_fraction("I/O Wait")
        if wait_frac > 0.3:
            out.append(f"async I/O wait consumes {100 * wait_frac:.0f}% of I/O time")
        if self.sizes.is_bimodal("read"):
            out.append("read sizes are bimodal")
        seq = self.patterns.fraction(PatternKind.SEQUENTIAL)
        out.append(f"{100 * seq:.0f}% of access streams are sequential")
        cycles = detect_cycles(self.trace)
        cyclic = sum(1 for fc in cycles.values() if fc.is_cyclic)
        if cyclic:
            out.append(f"{cyclic} file(s) show cyclic access")
        reuse = reuse_intervals(self.trace)
        if reuse.reuse_fraction > 0.3:
            out.append(
                f"{100 * reuse.reuse_fraction:.0f}% of region touches are "
                f"re-touches (mean reuse interval {reuse.mean_interval_s:.1f}s)"
            )
        return out

    def render(self) -> str:
        """Multi-section text report."""
        t = self.trace
        lines = [
            f"=== Characterization: {t.application or 'unnamed'} "
            f"({t.nodes} nodes, {len(t)} events) ===",
            "",
            self.operations.render("Operation summary"),
            "",
            self.sizes.render("Request sizes"),
            "",
            "Phases:",
        ]
        for p in self.phases:
            lines.append(
                f"  [{p.start:>8.1f}, {p.end:>8.1f}) {p.label:<6} "
                f"read={p.read_bytes:,}B write={p.write_bytes:,}B"
            )
        lines.append("")
        lines.append("Observations:")
        for obs in self.observations():
            lines.append(f"  - {obs}")
        lines.append("")
        lines.append("Per-file access:")
        for fid in self.file_access.file_ids():
            fa = self.file_access.files[fid]
            kind = (
                "read-only" if fa.read_only
                else "write-only" if fa.write_only
                else "read+write"
            )
            io_class = self.file_classes.get(fid)
            class_label = io_class.io_class.value if io_class else "-"
            lines.append(
                f"  file {fid:>4} {kind:<10} [{class_label:<17}] "
                f"R={fa.bytes_read:,}B W={fa.bytes_written:,}B "
                f"span={fa.access_span():.1f}s {fa.name}"
            )
        return "\n".join(lines)

    # -- convenience metrics --------------------------------------------------
    def read_bimodality(self) -> float:
        """Bimodality coefficient of read request sizes."""
        import numpy as np

        ev = self.trace.events
        mask = np.isin(ev["op"], [int(Op.READ), int(Op.AREAD)])
        return bimodality_coefficient(ev["nbytes"][mask])

    def mean_duration(self, op: Op) -> float:
        return op_duration_distribution(self.trace, op).mean

    def mean_size(self, op: Op) -> float:
        return op_size_distribution(self.trace, op).mean
