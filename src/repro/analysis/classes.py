"""The §2 I/O taxonomy: compulsory, checkpoint, and out-of-core accesses.

The paper (after Miller & Katz) classifies high-performance I/O into:

* **compulsory** — unavoidable reads of input data sets and writes of
  final results;
* **checkpoint** — intermediate state written for restart/reuse and
  (possibly) read back in a later phase or run;
* **out-of-core** — staging traffic to scratch files because the data
  does not fit in memory (cyclic reread of the same data).

We classify *per file* from the trace's own structure: read-only files
touched early are compulsory input; write-only files at the end are
compulsory output; written-then-reread files are checkpoint/staging; and
files re-read over multiple cycles are out-of-core.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..pablo.trace import Trace
from .cyclic import detect_cycles
from .file_access import FileAccessMap

__all__ = ["IOClass", "FileClassification", "classify_files"]


class IOClass(enum.Enum):
    """Why the I/O happens (§2)."""

    COMPULSORY_INPUT = "compulsory-input"
    COMPULSORY_OUTPUT = "compulsory-output"
    CHECKPOINT = "checkpoint"
    OUT_OF_CORE = "out-of-core"
    MIXED = "mixed"


@dataclass(frozen=True)
class FileClassification:
    """Classification of one file plus the evidence."""

    file_id: int
    io_class: IOClass
    bytes_read: int
    bytes_written: int
    read_cycles: int


def classify_files(
    trace: Trace, cycle_gap_s: float = 30.0, ooc_min_cycles: int = 3
) -> dict[int, FileClassification]:
    """Classify every file in the trace.

    Rules, applied in order:

    1. written then re-read in >= ``ooc_min_cycles`` cycles (or re-read
       volume multiple times the written volume) -> OUT_OF_CORE;
    2. written then re-read at all -> CHECKPOINT (staging for reuse);
    3. read-only -> COMPULSORY_INPUT;
    4. write-only -> COMPULSORY_OUTPUT;
    5. anything else -> MIXED.
    """
    amap = FileAccessMap(trace)
    cycles = detect_cycles(trace, gap_s=cycle_gap_s)
    out: dict[int, FileClassification] = {}
    for fid, fa in amap.files.items():
        n_read_cycles = 0
        fc = cycles.get(fid)
        if fc is not None and len(fa.read_times):
            first_read = fa.read_times[0]
            n_read_cycles = sum(1 for s, e, _ in fc.cycles if e >= first_read)
        if fa.written_then_read():
            reread_factor = fa.bytes_read / max(fa.bytes_written, 1)
            if n_read_cycles >= ooc_min_cycles or reread_factor >= ooc_min_cycles:
                io_class = IOClass.OUT_OF_CORE
            else:
                io_class = IOClass.CHECKPOINT
        elif fa.read_only:
            io_class = IOClass.COMPULSORY_INPUT
        elif fa.write_only:
            io_class = IOClass.COMPULSORY_OUTPUT
        else:
            io_class = IOClass.MIXED
        out[fid] = FileClassification(
            file_id=fid,
            io_class=io_class,
            bytes_read=fa.bytes_read,
            bytes_written=fa.bytes_written,
            read_cycles=n_read_cycles,
        )
    return out
