"""Spatial access-pattern classification.

Classifies, per (node, file) access stream, whether the offsets form a
sequential, strided (constant non-contiguous gap), or irregular pattern —
the axes of the paper's "sequential and highly irregular access patterns"
observation, and the signal the adaptive prefetcher (§10,
:mod:`repro.ppfs.adaptive`) keys on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..pablo.events import Op
from ..pablo.trace import Trace

__all__ = ["PatternKind", "StreamPattern", "classify_offsets", "PatternSummary"]


class PatternKind(enum.Enum):
    """Spatial structure of one access stream."""

    SEQUENTIAL = "sequential"
    STRIDED = "strided"
    IRREGULAR = "irregular"
    SINGLE = "single"  # too few accesses to classify


def classify_offsets(
    offsets: np.ndarray, sizes: np.ndarray, tolerance: float = 0.05
) -> PatternKind:
    """Classify an ordered (offset, size) stream.

    * **sequential** — each access starts where the previous ended (at
      least ``1 - tolerance`` of steps);
    * **strided** — start-to-start deltas are a constant non-sequential
      stride (at least ``1 - tolerance`` of steps);
    * **irregular** — anything else;
    * **single** — fewer than 3 accesses.

    >>> classify_offsets(np.array([0, 100, 200]), np.array([100, 100, 100]))
    <PatternKind.SEQUENTIAL: 'sequential'>
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    sizes = np.asarray(sizes, dtype=np.int64)
    if len(offsets) != len(sizes):
        raise ValueError("offsets and sizes must have equal length")
    if len(offsets) < 3:
        return PatternKind.SINGLE
    ends = offsets[:-1] + sizes[:-1]
    seq_steps = offsets[1:] == ends
    n_steps = len(seq_steps)
    if seq_steps.sum() >= (1 - tolerance) * n_steps:
        return PatternKind.SEQUENTIAL
    deltas = np.diff(offsets)
    # Dominant stride: the most common start-to-start delta.
    vals, counts = np.unique(deltas, return_counts=True)
    top = counts.max()
    if top >= (1 - tolerance) * n_steps and vals[counts.argmax()] != 0:
        return PatternKind.STRIDED
    return PatternKind.IRREGULAR


@dataclass(frozen=True)
class StreamPattern:
    """Classification of one (node, file) stream."""

    node: int
    file_id: int
    kind: PatternKind
    n_accesses: int
    bytes_accessed: int


class PatternSummary:
    """Classify every (node, file) read/write stream in a trace."""

    def __init__(self, trace: Trace, kind: str = "both", tolerance: float = 0.05):
        ev = trace.events
        if kind == "read":
            ops = [int(Op.READ), int(Op.AREAD)]
        elif kind == "write":
            ops = [int(Op.WRITE)]
        elif kind == "both":
            ops = [int(Op.READ), int(Op.AREAD), int(Op.WRITE)]
        else:
            raise ValueError(f"kind must be read/write/both, got {kind!r}")
        self.streams: list[StreamPattern] = []
        if len(ev) == 0:
            return
        sel = ev[np.isin(ev["op"], ops)]
        # Stable sort by (node, file, time): per-stream order preserved.
        order = np.lexsort((sel["timestamp"], sel["file_id"], sel["node"]))
        sel = sel[order]
        if len(sel) == 0:
            return
        keys = np.stack([sel["node"].astype(np.int64), sel["file_id"].astype(np.int64)], axis=1)
        change = np.any(keys[1:] != keys[:-1], axis=1)
        boundaries = np.concatenate([[0], np.nonzero(change)[0] + 1, [len(sel)]])
        for lo, hi in zip(boundaries[:-1], boundaries[1:]):
            chunk = sel[lo:hi]
            self.streams.append(
                StreamPattern(
                    node=int(chunk["node"][0]),
                    file_id=int(chunk["file_id"][0]),
                    kind=classify_offsets(chunk["offset"], chunk["nbytes"], tolerance),
                    n_accesses=int(hi - lo),
                    bytes_accessed=int(chunk["nbytes"].sum()),
                )
            )

    def fraction(self, kind: PatternKind, weight: str = "streams") -> float:
        """Share of streams (or accesses) with the given pattern."""
        if not self.streams:
            return 0.0
        if weight == "streams":
            total = len(self.streams)
            hit = sum(1 for s in self.streams if s.kind is kind)
        elif weight == "accesses":
            total = sum(s.n_accesses for s in self.streams)
            hit = sum(s.n_accesses for s in self.streams if s.kind is kind)
        else:
            raise ValueError(f"weight must be streams/accesses, got {weight!r}")
        return hit / total if total else 0.0

    def dominant(self) -> PatternKind:
        """The most common pattern by stream count."""
        if not self.streams:
            return PatternKind.SINGLE
        counts: dict[PatternKind, int] = {}
        for s in self.streams:
            counts[s.kind] = counts.get(s.kind, 0) + 1
        return max(counts, key=lambda k: counts[k])
