"""General I/O statistics computed off-line from event traces (§3.1):
means, variances, minima, maxima and distributions of operation durations
and sizes, plus a bimodality check for the paper's recurring 'request
sizes are bimodal' observation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..pablo.events import Op
from ..pablo.trace import Trace

__all__ = ["Distribution", "op_size_distribution", "op_duration_distribution", "bimodality_coefficient"]


@dataclass(frozen=True)
class Distribution:
    """Descriptive statistics of one sample set."""

    n: int
    mean: float
    variance: float
    minimum: float
    maximum: float
    median: float

    @classmethod
    def of(cls, values: np.ndarray) -> "Distribution":
        values = np.asarray(values, dtype=float)
        if len(values) == 0:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return cls(
            n=int(len(values)),
            mean=float(values.mean()),
            variance=float(values.var(ddof=1)) if len(values) > 1 else 0.0,
            minimum=float(values.min()),
            maximum=float(values.max()),
            median=float(np.median(values)),
        )

    def format(self, unit: str = "") -> str:
        u = f" {unit}" if unit else ""
        return (
            f"n={self.n}, mean={self.mean:.4g}{u}, var={self.variance:.4g}, "
            f"min={self.minimum:.4g}{u}, max={self.maximum:.4g}{u}, "
            f"median={self.median:.4g}{u}"
        )


def _select(trace: Trace, op: Op) -> np.ndarray:
    ev = trace.events
    return ev[ev["op"] == int(op)] if len(ev) else ev


def op_size_distribution(trace: Trace, op: Op) -> Distribution:
    """Distribution of request sizes for one operation type."""
    return Distribution.of(_select(trace, op)["nbytes"])


def op_duration_distribution(trace: Trace, op: Op) -> Distribution:
    """Distribution of call durations for one operation type."""
    return Distribution.of(_select(trace, op)["duration"])


def bimodality_coefficient(values: np.ndarray) -> float:
    """Sarle's bimodality coefficient: (skew^2 + 1) / kurtosis.

    Values above ~0.555 (the uniform distribution's coefficient) suggest
    bimodality.  Degenerate samples return 0.
    """
    values = np.asarray(values, dtype=float)
    n = len(values)
    if n < 4:
        return 0.0
    mean = values.mean()
    centered = values - mean
    m2 = float((centered**2).mean())
    if m2 == 0:
        return 0.0
    skew = float((centered**3).mean()) / m2**1.5
    excess_kurt = float((centered**4).mean()) / m2**2 - 3.0
    # Sample-size corrected denominator (standard definition).
    denom = excess_kurt + 3.0 * (n - 1) ** 2 / ((n - 2) * (n - 3))
    return (skew**2 + 1.0) / denom if denom else 0.0
