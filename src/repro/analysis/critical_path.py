"""Critical-path extraction and per-phase time attribution over span trees.

Answers the observability question the flat trace cannot: *which chain of
work set each phase's makespan, and where did that chain spend its time?*

The engine consumes a :class:`repro.spans.SpanStore` (recorded with
``Experiment(spans=True)`` / ``repro run --spans``) and produces one
:class:`PhaseAttribution` per application phase:

* **phases** come from the zero-length ``mark.*`` spans the application
  skeletons record at their phase boundaries; a store without marks is
  treated as one phase covering the whole run;
* the **critical node** of a phase is the compute node whose last
  root span (an ``op.*`` app-level call, or a ``fluid.plan`` in fluid
  mode) finishes the phase — the chain everyone else waited for at the
  closing barrier;
* the phase interval is then **tiled exactly** by that node's root
  spans and the gaps between them, so the component seconds sum to the
  phase makespan to the last ulp (the property test pins this):

  - gaps overlap machine-wide ``barrier.wait``/``sync.wait``/``bcast.wait``
    spans → ``stall``, the rest of each gap → ``compute``;
  - an op with chunk fan-out is decomposed along its *critical chunk*
    (the ``ion.request`` child finishing last): issue-to-arrival →
    ``network`` (minus any ``retry.backoff`` under the op → ``retry``),
    the request's ``ion.queue`` child → ``queue``, its service split via
    ``disk.seek`` / ``disk.xfer`` / ``raid.degraded`` children →
    ``seek`` / ``service`` / ``degraded``, and the post-service client
    copy → ``client``;
  - ops without fan-out (cache hits, seeks, token waits) split into
    ``stall`` (their wait children) and ``client``;
  - ``fluid.plan`` spans count whole as ``fluid``.

Because every piece is an interval of the tiling, no component is ever
double-counted and nothing is dropped — percentages are honest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "OpAttribution",
    "PhaseAttribution",
    "CriticalPathReport",
    "critical_path",
]

#: Attribution component keys, in display order.
COMPONENTS = (
    "compute",
    "stall",
    "network",
    "retry",
    "queue",
    "seek",
    "service",
    "degraded",
    "client",
    "fluid",
)

#: Machine-wide wait kinds whose overlap with inter-op gaps is ``stall``.
_WAIT_KINDS = ("barrier.wait", "sync.wait", "bcast.wait")

_EPS = 1e-9


@dataclass
class OpAttribution:
    """One root span on the critical chain, decomposed."""

    sid: int
    kind: str
    start: float
    end: float
    nbytes: int
    components: dict[str, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class PhaseAttribution:
    """One phase's makespan, critical node, and exact decomposition."""

    name: str
    start: float
    end: float
    node: int
    components: dict[str, float]
    ops: list[OpAttribution]

    @property
    def makespan(self) -> float:
        return self.end - self.start

    def percentages(self) -> dict[str, float]:
        total = self.makespan
        if total <= 0:
            return {k: 0.0 for k in self.components}
        return {k: 100.0 * v / total for k, v in self.components.items()}


@dataclass
class CriticalPathReport:
    """All phases of one run, attributed."""

    phases: list[PhaseAttribution]

    @property
    def makespan(self) -> float:
        return self.phases[-1].end - self.phases[0].start if self.phases else 0.0

    def render(self, top_ops: int = 0) -> str:
        lines = ["critical path", "============="]
        active = [k for k in COMPONENTS
                  if any(p.components.get(k, 0.0) > 0.0 for p in self.phases)]
        header = f"{'phase':<14} {'node':>4} {'makespan':>10}"
        for key in active:
            header += f" {key:>9}"
        lines.append(header)
        for p in self.phases:
            pct = p.percentages()
            row = f"{p.name:<14} {p.node:>4} {p.makespan:>9.3f}s"
            for key in active:
                row += f" {pct.get(key, 0.0):>8.1f}%"
            lines.append(row)
        if top_ops:
            for p in self.phases:
                chain = sorted(p.ops, key=lambda o: o.duration, reverse=True)
                if not chain:
                    continue
                lines.append("")
                lines.append(f"{p.name}: slowest ops on node {p.node}")
                for op in chain[:top_ops]:
                    parts = ", ".join(
                        f"{k} {v:.4f}s" for k, v in op.components.items() if v > 0
                    )
                    lines.append(
                        f"  {op.kind:<10} [{op.start:9.3f}, {op.end:9.3f}] "
                        f"{op.nbytes:>9,} B  {parts}"
                    )
        return "\n".join(lines)


def critical_path(store) -> CriticalPathReport:
    """Extract phases and attribute each one's makespan (see module doc)."""
    n = len(store)
    if n == 0:
        return CriticalPathReport(phases=[])
    rows = store.rows
    kinds = tuple(store.kinds)
    kind_col = rows[:, 1].astype(np.int64)
    parent = rows[:, 0].astype(np.int64)
    node = rows[:, 2].astype(np.int64)
    start = rows[:, 3]
    end = rows[:, 4]

    children: dict[int, list[int]] = {}
    for sid in range(n):
        p = int(parent[sid])
        if p >= 0:
            children.setdefault(p, []).append(sid)

    def kname(sid: int) -> str:
        return kinds[int(kind_col[sid])]

    # -- phase boundaries from mark.* spans --------------------------------
    t0 = float(start.min())
    t_end = float(end.max())
    marks = sorted(
        (float(start[sid]), kname(sid)[5:])
        for sid in range(n)
        if kname(sid).startswith("mark.")
    )
    bounds: list[tuple[str, float, float]] = []
    prev = t0
    for when, name in marks:
        if when > prev + _EPS:
            bounds.append((name, prev, when))
            prev = when
    if t_end > prev + _EPS or not bounds:
        bounds.append(("run" if not bounds else "(tail)", prev, t_end))

    # -- root spans that tile a node's time --------------------------------
    is_root_op = np.zeros(n, dtype=bool)
    for sid in range(n):
        name = kname(sid)
        if parent[sid] == -1 and name.startswith("op."):
            is_root_op[sid] = True
        elif name == "fluid.plan":
            # Plans parent under their fluid.phase span but occupy their
            # node's timeline the way op roots do.
            is_root_op[sid] = True
    wait_ids = [
        sid for sid in range(n)
        if parent[sid] == -1 and kname(sid) in _WAIT_KINDS
    ]

    phases = [
        _attribute_phase(
            pname, ps, pe, is_root_op, wait_ids, children,
            kname, node, start, end, rows,
        )
        for pname, ps, pe in bounds
    ]
    return CriticalPathReport(phases=phases)


def _attribute_phase(
    pname, ps, pe, is_root_op, wait_ids, children, kname, node, start, end, rows
):
    in_phase = np.flatnonzero(
        is_root_op & (end > ps + _EPS) & (end <= pe + _EPS)
    )
    if len(in_phase) == 0:
        comp = {"compute": pe - ps}
        return PhaseAttribution(pname, ps, pe, -1, comp, [])
    crit_sid = int(in_phase[np.argmax(end[in_phase])])
    crit_node = int(node[crit_sid])
    chain = sorted(
        (int(sid) for sid in in_phase if node[sid] == crit_node),
        key=lambda sid: (start[sid], sid),
    )

    components = {k: 0.0 for k in COMPONENTS}
    ops: list[OpAttribution] = []
    cursor = ps
    for sid in chain:
        s = max(float(start[sid]), cursor)
        e = min(float(end[sid]), pe)
        if e <= cursor + _EPS:
            continue  # fully overlapped by a previous op on this node
        _attribute_gap(cursor, s, wait_ids, start, end, components)
        op_comp = _attribute_op(sid, s, e, children, kname, start, end)
        for key, val in op_comp.items():
            components[key] += val
        ops.append(OpAttribution(
            sid, kname(sid), s, e, int(rows[sid, 5]), op_comp
        ))
        cursor = e
    _attribute_gap(cursor, pe, wait_ids, start, end, components)
    components = {k: v for k, v in components.items() if v > 0.0}
    return PhaseAttribution(pname, ps, pe, crit_node, components, ops)


def _attribute_gap(lo, hi, wait_ids, start, end, components) -> None:
    """Split an inter-op gap into stall (overlap with machine-wide waits,
    merged so concurrent waits are not double-counted) and compute."""
    gap = hi - lo
    if gap <= 0:
        return
    intervals = sorted(
        (max(float(start[w]), lo), min(float(end[w]), hi))
        for w in wait_ids
        if end[w] > lo and start[w] < hi
    )
    stall = 0.0
    reach = lo
    for a, b in intervals:
        if b > reach:
            stall += b - max(a, reach)
            reach = b
    components["stall"] += stall
    components["compute"] += gap - stall
    return


def _attribute_op(sid, s, e, children, kname, start, end) -> dict[str, float]:
    """Decompose one root span over [s, e] along its critical chunk chain.

    The returned components are an exact tiling: they sum to ``e - s``.
    """
    comp: dict[str, float] = {}
    kids = children.get(sid, ())
    if kname(sid) == "fluid.plan":
        comp["fluid"] = e - s
        return comp
    requests = [k for k in kids if kname(k) in ("ion.request", "ion.cohort")]
    if not requests:
        # Client-local op: waits it contains are stall, the rest client.
        waits = sum(
            min(float(end[k]), e) - max(float(start[k]), s)
            for k in kids
            if kname(k).startswith(("token.", "sync.", "barrier.", "bcast."))
            and end[k] > s and start[k] < e
        )
        waits = min(max(waits, 0.0), e - s)
        if waits > 0:
            comp["stall"] = waits
        comp["client"] = (e - s) - waits
        return comp
    crit = max(requests, key=lambda k: float(end[k]))
    # Clamp the critical request's window into the (possibly clipped)
    # op window so every piece below stays a sub-interval of [s, e].
    cs = min(max(float(start[crit]), s), e)
    ce = min(max(float(end[crit]), cs), e)
    pre = cs - s
    retry = sum(
        float(end[k]) - float(start[k]) for k in kids if kname(k) == "retry.backoff"
    )
    retry = min(retry, pre)
    if retry > 0:
        comp["retry"] = retry
    comp["network"] = pre - retry
    queue = service = seek = xfer = degraded = 0.0
    for k in children.get(crit, ()):
        name = kname(k)
        dur = float(end[k]) - float(start[k])
        if name == "ion.queue":
            queue += dur
        elif name in ("ion.service", "ion.control"):
            service += dur
            for g in children.get(k, ()):
                gname = kname(g)
                gdur = float(end[g]) - float(start[g])
                if gname == "disk.seek":
                    seek += gdur
                elif gname == "disk.xfer":
                    xfer += gdur
                elif gname == "raid.degraded":
                    degraded += gdur
    total = queue + service
    span_dur = ce - cs
    if total <= 0.0:
        comp["service"] = span_dur
    else:
        # Scale so queue+service exactly tiles the (possibly clipped)
        # request interval, then split service into its disk pieces.
        scale = span_dur / total
        comp["queue"] = queue * scale
        disk = seek + xfer + degraded
        if disk > 0.0 and disk <= service:
            rest = service - disk
            comp["seek"] = seek * scale
            comp["degraded"] = degraded * scale
            comp["service"] = (xfer + rest) * scale
        else:
            comp["service"] = service * scale
    comp["client"] = e - ce
    return {k: v for k, v in comp.items() if v != 0.0}
