"""Trace differencing: quantify what a configuration change did.

The §5.2 and replay workflows always end in the same question — *what
changed between these two traces?*  :class:`TraceDiff` answers it
per-operation: count/volume deltas (which should usually be zero: the
application issued the same requests) and node-time deltas (where the
policy effect lives), plus a speedup summary.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..pablo.trace import Trace
from .operations import OperationTable

__all__ = ["OpDelta", "TraceDiff"]


@dataclass(frozen=True)
class OpDelta:
    """Per-operation before/after comparison."""

    label: str
    count_before: int
    count_after: int
    time_before_s: float
    time_after_s: float

    @property
    def count_delta(self) -> int:
        return self.count_after - self.count_before

    @property
    def time_speedup(self) -> float:
        """before/after node time; inf when the cost vanished."""
        if self.time_after_s == 0:
            return float("inf") if self.time_before_s > 0 else 1.0
        return self.time_before_s / self.time_after_s


class TraceDiff:
    """Compare two traces of (nominally) the same request stream."""

    def __init__(self, before: Trace, after: Trace):
        self.before = before
        self.after = after
        tb = OperationTable(before)
        ta = OperationTable(after)
        labels = [r.label for r in tb.rows]
        labels += [r.label for r in ta.rows if r.label not in labels]
        self.deltas = [
            OpDelta(
                label=label,
                count_before=tb.row(label).count,
                count_after=ta.row(label).count,
                time_before_s=tb.row(label).node_time_s,
                time_after_s=ta.row(label).node_time_s,
            )
            for label in labels
        ]
        self.total_before_s = tb.all_row.node_time_s
        self.total_after_s = ta.all_row.node_time_s

    @property
    def io_time_speedup(self) -> float:
        if self.total_after_s == 0:
            return float("inf") if self.total_before_s > 0 else 1.0
        return self.total_before_s / self.total_after_s

    def same_request_stream(self) -> bool:
        """True when every operation's count is unchanged (the application
        did the same work; only the substrate differed)."""
        return all(d.count_delta == 0 for d in self.deltas)

    def delta(self, label: str) -> OpDelta:
        for d in self.deltas:
            if d.label == label:
                return d
        return OpDelta(label, 0, 0, 0.0, 0.0)

    def render(self) -> str:
        header = (
            f"{'Operation':<12} {'count':>9} {'Δcount':>8} "
            f"{'before(s)':>12} {'after(s)':>12} {'speedup':>9}"
        )
        lines = [
            f"Trace diff: {self.before.application!r} -> {self.after.application!r}",
            header,
            "-" * len(header),
        ]
        for d in self.deltas:
            speed = "inf" if d.time_speedup == float("inf") else f"{d.time_speedup:.2f}x"
            lines.append(
                f"{d.label:<12} {d.count_before:>9,} {d.count_delta:>+8,} "
                f"{d.time_before_s:>12,.2f} {d.time_after_s:>12,.2f} {speed:>9}"
            )
        lines.append(
            f"total I/O node time: {self.total_before_s:,.2f}s -> "
            f"{self.total_after_s:,.2f}s ({self.io_time_speedup:.1f}x)"
        )
        return "\n".join(lines)
