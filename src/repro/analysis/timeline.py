"""Operation timelines (paper Figures 2-4, 6-7, 9-14).

The paper's timeline figures scatter request size against request start
time, one panel for reads and one for writes.  :class:`Timeline` extracts
the series; :func:`ascii_scatter` renders a terminal approximation so the
benches can show the figure's shape; :class:`BurstAnalysis` quantifies the
clustered write groups of ESCAT's Figure 4 (burst count and the
decreasing inter-burst spacing).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..pablo.events import Op
from ..pablo.trace import Trace

__all__ = ["Timeline", "BurstAnalysis", "ascii_scatter"]


class Timeline:
    """(time, size) series for one class of operations."""

    def __init__(self, trace: Trace, kind: str = "read"):
        ev = trace.events
        if kind == "read":
            ops = [int(Op.READ), int(Op.AREAD)]
        elif kind == "write":
            ops = [int(Op.WRITE)]
        elif kind == "seek":
            ops = [int(Op.SEEK)]
        else:
            raise ValueError(f"kind must be read/write/seek, got {kind!r}")
        mask = np.isin(ev["op"], ops) if len(ev) else np.zeros(0, bool)
        sel = ev[mask]
        order = np.argsort(sel["timestamp"], kind="stable")
        self.times = sel["timestamp"][order].astype(float)
        self.sizes = sel["nbytes"][order].astype(float)
        self.nodes = sel["node"][order]

    def __len__(self) -> int:
        return len(self.times)

    def within(self, start: float, end: float) -> "Timeline":
        """Restrict to [start, end) — the 'detail' zoom of Figure 3."""
        clone = object.__new__(Timeline)
        mask = (self.times >= start) & (self.times < end)
        clone.times = self.times[mask]
        clone.sizes = self.sizes[mask]
        clone.nodes = self.nodes[mask]
        return clone

    def rate(self, window_s: float) -> tuple[np.ndarray, np.ndarray]:
        """(window start times, ops per window) for activity profiles."""
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        if len(self.times) == 0:
            return np.array([]), np.array([])
        end = self.times.max() + window_s
        edges = np.arange(0.0, end + window_s, window_s)
        counts, _ = np.histogram(self.times, bins=edges)
        return edges[:-1], counts

    def span(self) -> tuple[float, float]:
        """(first, last) operation start times."""
        if len(self.times) == 0:
            return (0.0, 0.0)
        return float(self.times[0]), float(self.times[-1])

    def interarrivals(self) -> np.ndarray:
        """Gaps between consecutive operation starts (the paper's
        'temporal spacing' statistic; empty for < 2 operations)."""
        if len(self.times) < 2:
            return np.zeros(0)
        return np.diff(self.times)


@dataclass(frozen=True)
class Burst:
    """One temporal cluster of operations."""

    start: float
    end: float
    count: int

    @property
    def center(self) -> float:
        return (self.start + self.end) / 2.0


class BurstAnalysis:
    """Clusters a timeline into bursts separated by >= ``gap_s`` of quiet.

    ESCAT's quadrature writes arrive in synchronized groups whose spacing
    shrinks from ~160 s to ~80 s across the phase (Figure 4); ``spacings``
    exposes that series and ``spacing_trend`` its endpoints.
    """

    def __init__(self, timeline: Timeline, gap_s: float = 10.0):
        if gap_s <= 0:
            raise ValueError(f"gap_s must be > 0, got {gap_s}")
        self.gap_s = gap_s
        times = timeline.times
        self.bursts: list[Burst] = []
        if len(times) == 0:
            return
        start = prev = times[0]
        count = 1
        for t in times[1:]:
            if t - prev >= gap_s:
                self.bursts.append(Burst(float(start), float(prev), count))
                start = t
                count = 0
            count += 1
            prev = t
        self.bursts.append(Burst(float(start), float(prev), count))

    @property
    def spacings(self) -> np.ndarray:
        """Center-to-center spacing between consecutive bursts."""
        centers = np.array([b.center for b in self.bursts])
        return np.diff(centers)

    def spacing_trend(self) -> tuple[float, float]:
        """(mean early spacing, mean late spacing) over first/last thirds."""
        s = self.spacings
        if len(s) < 3:
            return (float(s.mean()), float(s.mean())) if len(s) else (0.0, 0.0)
        third = max(1, len(s) // 3)
        return float(s[:third].mean()), float(s[-third:].mean())


def ascii_scatter(
    times: np.ndarray,
    sizes: np.ndarray,
    width: int = 72,
    height: int = 16,
    log_y: bool = True,
    marker: str = "*",
) -> str:
    """Terminal scatter plot of request size vs. time.

    A coarse stand-in for the paper's figures: enough to see phases,
    bursts, and size bands.
    """
    if len(times) == 0:
        return "(no operations)"
    t0, t1 = float(np.min(times)), float(np.max(times))
    tspan = (t1 - t0) or 1.0
    vals = np.asarray(sizes, dtype=float)
    if log_y:
        vals = np.log10(np.maximum(vals, 1.0))
    v0, v1 = float(vals.min()), float(vals.max())
    vspan = (v1 - v0) or 1.0
    grid = [[" "] * width for _ in range(height)]
    cols = np.minimum(((times - t0) / tspan * (width - 1)).astype(int), width - 1)
    rows = np.minimum(((vals - v0) / vspan * (height - 1)).astype(int), height - 1)
    for c, r in zip(cols, rows):
        grid[height - 1 - r][c] = marker
    top = f"10^{v1:.1f} B" if log_y else f"{v1:.0f}"
    bottom = f"10^{v0:.1f} B" if log_y else f"{v0:.0f}"
    lines = [f"{top:>12} |" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 12 + " |" + "".join(row))
    lines.append(f"{bottom:>12} |" + "".join(grid[-1]))
    lines.append(" " * 14 + "-" * width)
    lines.append(f"{'':14}{t0:<12.1f}{'time (s)':^{max(0, width - 24)}}{t1:>12.1f}")
    return "\n".join(lines)
