"""File access timelines (paper Figures 5, 8, 15-17).

The paper's file-access figures plot, for every file, when it was read
(diamonds) and written (crosses) over the run.  :class:`FileAccessMap`
extracts the per-file event series plus the derived observations the
paper draws from the figures: which files are read-only/write-only,
whether output files show the 'staircase' of being written once in their
entirety (RENDER), and whether per-node files are written in one phase
and reread in another (HTF).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..pablo.events import Op
from ..pablo.trace import Trace

__all__ = ["FileAccess", "FileAccessMap", "ascii_access_map"]


@dataclass(frozen=True)
class FileAccess:
    """Access summary for one file."""

    file_id: int
    name: str
    read_times: np.ndarray
    write_times: np.ndarray
    bytes_read: int
    bytes_written: int

    @property
    def first_access(self) -> float:
        candidates = []
        if len(self.read_times):
            candidates.append(self.read_times[0])
        if len(self.write_times):
            candidates.append(self.write_times[0])
        return float(min(candidates)) if candidates else float("nan")

    @property
    def last_access(self) -> float:
        candidates = []
        if len(self.read_times):
            candidates.append(self.read_times[-1])
        if len(self.write_times):
            candidates.append(self.write_times[-1])
        return float(max(candidates)) if candidates else float("nan")

    @property
    def read_only(self) -> bool:
        return len(self.read_times) > 0 and len(self.write_times) == 0

    @property
    def write_only(self) -> bool:
        return len(self.write_times) > 0 and len(self.read_times) == 0

    def written_then_read(self) -> bool:
        """True when every read follows every write (HTF integral files,
        ESCAT staging files)."""
        if not len(self.read_times) or not len(self.write_times):
            return False
        return self.write_times.max() <= self.read_times.min()

    def access_span(self) -> float:
        """Seconds between first and last access."""
        return self.last_access - self.first_access


class FileAccessMap:
    """Per-file read/write time series for a whole trace."""

    def __init__(self, trace: Trace):
        ev = trace.events
        self.files: dict[int, FileAccess] = {}
        if len(ev) == 0:
            return
        read_ops = np.isin(ev["op"], [int(Op.READ), int(Op.AREAD)])
        write_ops = ev["op"] == int(Op.WRITE)
        for fid in np.unique(ev["file_id"]):
            fmask = ev["file_id"] == fid
            r = ev[fmask & read_ops]
            w = ev[fmask & write_ops]
            if len(r) == 0 and len(w) == 0:
                continue
            self.files[int(fid)] = FileAccess(
                file_id=int(fid),
                name=trace.file_names.get(int(fid), ""),
                read_times=np.sort(r["timestamp"].astype(float)),
                write_times=np.sort(w["timestamp"].astype(float)),
                bytes_read=int(r["nbytes"].sum()),
                bytes_written=int(w["nbytes"].sum()),
            )

    def __len__(self) -> int:
        return len(self.files)

    def file_ids(self) -> list[int]:
        return sorted(self.files)

    def staircase(self) -> list[FileAccess]:
        """Write-only files accessed in one contiguous visit, ordered by
        first access — RENDER's per-frame output files form a staircase
        on the figure."""
        singles = [fa for fa in self.files.values() if fa.write_only]
        return sorted(singles, key=lambda fa: fa.first_access)

    def is_staircase(self, file_ids: list[int], overlap_tolerance: float = 0.0) -> bool:
        """True when the given files are written in strictly advancing,
        non-interleaved visits."""
        accesses = [self.files[fid] for fid in file_ids if fid in self.files]
        accesses.sort(key=lambda fa: fa.first_access)
        for prev, nxt in zip(accesses, accesses[1:]):
            if nxt.first_access + overlap_tolerance < prev.last_access:
                return False
        return True


def ascii_access_map(
    amap: FileAccessMap, width: int = 72, t_end: float | None = None
) -> str:
    """Terminal rendering of the access map: one row per file,
    ``x`` for writes (the paper's crosses), ``o`` for reads (diamonds),
    ``#`` where both fall in the same column."""
    if not amap.files:
        return "(no file accesses)"
    t0 = min(fa.first_access for fa in amap.files.values())
    t1 = t_end if t_end is not None else max(fa.last_access for fa in amap.files.values())
    span = (t1 - t0) or 1.0
    lines = [f"{'file':>6} |{'':{width}}| (x=write o=read #=both)"]
    for fid in amap.file_ids():
        fa = amap.files[fid]
        row = [" "] * width
        for t in fa.write_times:
            c = min(int((t - t0) / span * (width - 1)), width - 1)
            row[c] = "x"
        for t in fa.read_times:
            c = min(int((t - t0) / span * (width - 1)), width - 1)
            row[c] = "#" if row[c] == "x" else "o"
        lines.append(f"{fid:>6} |" + "".join(row) + "|")
    lines.append(f"{'':>6}  {t0:<10.1f}{'time (s)':^{max(0, width - 20)}}{t1:>10.1f}")
    return "\n".join(lines)
