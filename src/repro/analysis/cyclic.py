"""Cyclic access detection and reuse intervals.

The paper's conclusions (§10): "Cyclic behavior, with repeated patterns
of file open, access, and close, occur often, but the temporal spacing
between requests across cycles is less regular."  This module quantifies
both: per-file access *cycles* (maximal runs of activity separated by
quiet gaps, e.g. HTF's six SCF passes over each integral file) and
*reuse intervals* (time between successive touches of the same file
region — the classic file-caching statistic from the Miller/Katz
lineage the paper builds on).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..pablo.events import Op
from ..pablo.trace import Trace

__all__ = ["FileCycles", "detect_cycles", "reuse_intervals", "ReuseStats"]


@dataclass(frozen=True)
class FileCycles:
    """Cycle structure of one file's data accesses."""

    file_id: int
    #: (start, end, op count) per cycle, in time order.
    cycles: tuple[tuple[float, float, int], ...]
    #: Gaps between consecutive cycles.
    gaps: tuple[float, ...]

    @property
    def n_cycles(self) -> int:
        return len(self.cycles)

    @property
    def is_cyclic(self) -> bool:
        """Two or more activity cycles."""
        return self.n_cycles >= 2

    def gap_irregularity(self) -> float:
        """Coefficient of variation of inter-cycle gaps (the paper: the
        spacing across cycles 'is less regular'); 0 when < 2 gaps."""
        if len(self.gaps) < 2:
            return 0.0
        gaps = np.asarray(self.gaps)
        mean = gaps.mean()
        return float(gaps.std() / mean) if mean else 0.0


def detect_cycles(trace: Trace, gap_s: float = 30.0) -> dict[int, FileCycles]:
    """Per-file activity cycles: runs of data accesses split at quiet
    gaps of at least ``gap_s`` seconds."""
    if gap_s <= 0:
        raise ValueError(f"gap_s must be > 0, got {gap_s}")
    ev = trace.events
    out: dict[int, FileCycles] = {}
    if len(ev) == 0:
        return out
    data = ev[np.isin(ev["op"], [int(Op.READ), int(Op.AREAD), int(Op.WRITE)])]
    for fid in np.unique(data["file_id"]):
        times = np.sort(data["timestamp"][data["file_id"] == fid].astype(float))
        if len(times) == 0:
            continue
        breaks = np.nonzero(np.diff(times) >= gap_s)[0]
        starts = np.concatenate([[0], breaks + 1])
        ends = np.concatenate([breaks, [len(times) - 1]])
        cycles = tuple(
            (float(times[s]), float(times[e]), int(e - s + 1))
            for s, e in zip(starts, ends)
        )
        gaps = tuple(
            float(cycles[i + 1][0] - cycles[i][1]) for i in range(len(cycles) - 1)
        )
        out[int(fid)] = FileCycles(int(fid), cycles, gaps)
    return out


@dataclass(frozen=True)
class ReuseStats:
    """Distribution of region reuse intervals for one trace."""

    n_reuses: int
    n_first_touches: int
    mean_interval_s: float
    median_interval_s: float
    max_interval_s: float

    @property
    def reuse_fraction(self) -> float:
        """Share of region touches that are re-touches."""
        total = self.n_reuses + self.n_first_touches
        return self.n_reuses / total if total else 0.0


def reuse_intervals(
    trace: Trace, region_bytes: int = 64 * 1024, file_id: int | None = None
) -> ReuseStats:
    """Time between successive touches of the same (file, region).

    Long mean intervals with high reuse fractions are the signature of
    cyclic rereads (HTF pscf); near-zero reuse marks write-once data
    (RENDER frames).
    """
    if region_bytes <= 0:
        raise ValueError(f"region_bytes must be > 0, got {region_bytes}")
    ev = trace.events
    data = ev[np.isin(ev["op"], [int(Op.READ), int(Op.AREAD), int(Op.WRITE)])]
    if file_id is not None:
        data = data[data["file_id"] == file_id]
    last_touch: dict[tuple[int, int], float] = {}
    intervals: list[float] = []
    first = 0
    order = np.argsort(data["timestamp"], kind="stable")
    for row in data[order]:
        t = float(row["timestamp"])
        start_region = int(row["offset"]) // region_bytes
        end_region = int(row["offset"] + max(row["nbytes"], 1) - 1) // region_bytes
        for region in range(start_region, end_region + 1):
            key = (int(row["file_id"]), region)
            prev = last_touch.get(key)
            if prev is None:
                first += 1
            else:
                intervals.append(t - prev)
            last_touch[key] = t
    arr = np.asarray(intervals) if intervals else np.zeros(0)
    return ReuseStats(
        n_reuses=len(intervals),
        n_first_touches=first,
        mean_interval_s=float(arr.mean()) if len(arr) else 0.0,
        median_interval_s=float(np.median(arr)) if len(arr) else 0.0,
        max_interval_s=float(arr.max()) if len(arr) else 0.0,
    )
