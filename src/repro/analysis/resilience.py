"""Resilience analysis: what did the faults cost?

Reads the FAULT / RETRY / DEGRADED rows the injector appended to a trace
and summarizes the run's degraded operation: which faults fired, how many
re-issues the retry layer performed and how long they waited, how long
each I/O node served in degraded mode — and, given a fault-free *twin*
trace of the same workload, the makespan slowdown and the per-phase
slowdown (which phase of the application actually paid for the fault).

Everything derives from trace rows, so ``repro faults report TRACE.sddf``
reproduces the exact in-process summary from a saved trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..pablo.events import Op
from ..pablo.trace import Trace
from .phases import detect_phases

__all__ = ["ResilienceReport"]

# FaultKind labels, duplicated from repro.faults.plan by code so the
# analysis layer stays importable without the faults package in the
# dependency path of a trace file.
_KIND_LABELS = {
    1: "disk-fail",
    2: "disk-failslow",
    3: "disk-failslow-end",
    4: "node-crash",
    5: "node-restart",
    6: "rebuild-start",
    7: "rebuild-done",
    8: "drop-start",
    9: "drop-end",
    10: "bb-drain-fail",
    11: "bb-drain-resume",
}


@dataclass
class ResilienceReport:
    """Summary of a trace's resilience rows (see module docstring).

    Parameters
    ----------
    trace:
        The (possibly faulted) trace to analyze.
    baseline:
        Optional fault-free twin of the same workload, enabling the
        slowdown sections.
    phase_window_s:
        Bin width handed to :func:`repro.analysis.phases.detect_phases`
        for the per-phase comparison.
    """

    trace: Trace
    baseline: Optional[Trace] = None
    phase_window_s: float = 2.0

    fault_counts: dict[str, int] = field(init=False)
    retry_count: int = field(init=False)
    retry_wait_s: float = field(init=False)
    degraded_by_node: dict[int, float] = field(init=False)
    makespan_s: float = field(init=False)
    baseline_makespan_s: Optional[float] = field(init=False)

    def __post_init__(self) -> None:
        ev = self.trace.events
        op = ev["op"]
        faults = ev[op == int(Op.FAULT)]
        self.fault_counts = {}
        for code in faults["offset"]:
            label = _KIND_LABELS.get(int(code), f"kind-{int(code)}")
            self.fault_counts[label] = self.fault_counts.get(label, 0) + 1
        retries = ev[op == int(Op.RETRY)]
        self.retry_count = int(len(retries))
        self.retry_wait_s = float(retries["duration"].sum())
        degraded = ev[op == int(Op.DEGRADED)]
        self.degraded_by_node = {}
        for row in degraded:
            node = int(row["node"])
            self.degraded_by_node[node] = (
                self.degraded_by_node.get(node, 0.0) + float(row["duration"])
            )
        self.makespan_s = self._makespan(ev)
        self.baseline_makespan_s = (
            self._makespan(self.baseline.events) if self.baseline is not None else None
        )

    @staticmethod
    def _makespan(ev: np.ndarray) -> float:
        # Application-visible span: resilience rows are bookkeeping (a
        # rebuild can outlive the app), so measure over real ops only.
        app = ev[ev["op"] < int(Op.FAULT)]
        if len(app) == 0:
            return 0.0
        ts = app["timestamp"]
        return float((ts + app["duration"]).max())

    # -- derived ------------------------------------------------------------
    @property
    def total_degraded_s(self) -> float:
        return sum(self.degraded_by_node.values())

    @property
    def slowdown(self) -> Optional[float]:
        """Makespan ratio vs the fault-free twin (None without one)."""
        if self.baseline_makespan_s is None or self.baseline_makespan_s == 0.0:
            return None
        return self.makespan_s / self.baseline_makespan_s

    def phase_slowdowns(self) -> list[tuple[str, float, float, float]]:
        """Per-phase (label, baseline_s, faulted_s, ratio) vs the twin.

        Phases are detected independently on both traces and paired by
        index; a count mismatch (a fault that merged or split phases)
        truncates to the common prefix.
        """
        if self.baseline is None:
            return []
        ours = detect_phases(self.trace, window_s=self.phase_window_s)
        theirs = detect_phases(self.baseline, window_s=self.phase_window_s)
        rows = []
        for mine, base in zip(ours, theirs):
            ratio = mine.duration / base.duration if base.duration else float("nan")
            rows.append((base.label, base.duration, mine.duration, ratio))
        return rows

    # -- presentation --------------------------------------------------------
    def summary(self) -> dict:
        """Plain-dict form (JSON-friendly, deterministic key order)."""
        out = {
            "faults": dict(sorted(self.fault_counts.items())),
            "retries": self.retry_count,
            "retry_wait_s": round(self.retry_wait_s, 9),
            "degraded_s_by_node": {
                str(k): round(v, 9) for k, v in sorted(self.degraded_by_node.items())
            },
            "total_degraded_s": round(self.total_degraded_s, 9),
            "makespan_s": round(self.makespan_s, 9),
        }
        if self.baseline_makespan_s is not None:
            out["baseline_makespan_s"] = round(self.baseline_makespan_s, 9)
            out["slowdown"] = round(self.slowdown, 9)
        return out

    def render(self) -> str:
        """Deterministic text report."""
        lines = ["Resilience report", "================="]
        if not self.fault_counts and not self.retry_count and not self.degraded_by_node:
            lines.append("no fault, retry or degraded events in trace")
        if self.fault_counts:
            lines.append("Faults:")
            for label, count in sorted(self.fault_counts.items()):
                lines.append(f"  {label:<20} {count}")
        if self.retry_count:
            lines.append(
                f"Retries: {self.retry_count} re-issues, "
                f"{self.retry_wait_s:.4f}s total backoff wait"
            )
        if self.degraded_by_node:
            lines.append("Degraded service:")
            for node, seconds in sorted(self.degraded_by_node.items()):
                lines.append(f"  ionode {node:<3} {seconds:.4f}s")
            lines.append(f"  total      {self.total_degraded_s:.4f}s")
        lines.append(f"Makespan: {self.makespan_s:.4f}s")
        if self.baseline_makespan_s is not None:
            lines.append(
                f"Fault-free twin: {self.baseline_makespan_s:.4f}s "
                f"(slowdown x{self.slowdown:.4f})"
            )
            rows = self.phase_slowdowns()
            if rows:
                lines.append("Per-phase slowdown (paired by index):")
                lines.append(f"  {'phase':<8} {'base s':>10} {'fault s':>10} {'ratio':>8}")
                for label, base_s, mine_s, ratio in rows:
                    lines.append(
                        f"  {label:<8} {base_s:>10.3f} {mine_s:>10.3f} {ratio:>8.3f}"
                    )
        return "\n".join(lines)
