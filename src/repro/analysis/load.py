"""I/O-node load analysis.

Two views of how work spreads over the striped storage:

* **predicted** — push a trace's data accesses through a file-id ->
  :class:`~repro.pfs.striping.StripeLayout` map and count bytes per I/O
  node (how well 64 KB round-robin striping balances this workload);
* **observed** — read the machine's I/O-node counters after a run
  (includes queueing-irrelevant ops like flush visits).

Imbalance is reported as max/mean byte load; 1.0 is perfect balance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.paragon import Paragon
from ..pablo.events import Op
from ..pablo.trace import Trace
from ..pfs.striping import StripeLayout

__all__ = ["LoadReport", "predicted_load", "observed_load"]


@dataclass(frozen=True)
class LoadReport:
    """Per-I/O-node byte loads plus summary statistics."""

    bytes_per_node: tuple[int, ...]

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_per_node)

    @property
    def imbalance(self) -> float:
        """max/mean load; 1.0 = perfectly balanced, 0 when idle."""
        loads = np.asarray(self.bytes_per_node, dtype=float)
        mean = loads.mean()
        return float(loads.max() / mean) if mean else 0.0

    @property
    def busiest(self) -> int:
        """Index of the most-loaded I/O node."""
        return int(np.argmax(self.bytes_per_node))

    def render(self) -> str:
        width = 40
        peak = max(self.bytes_per_node) or 1
        lines = [f"{'ionode':>6} {'bytes':>16}"]
        for i, b in enumerate(self.bytes_per_node):
            bar = "#" * int(width * b / peak)
            lines.append(f"{i:>6} {b:>16,} {bar}")
        lines.append(f"imbalance (max/mean): {self.imbalance:.3f}")
        return "\n".join(lines)


def predicted_load(
    trace: Trace, layouts: dict[int, StripeLayout], n_ionodes: int
) -> LoadReport:
    """Bytes each I/O node would serve for the trace's data accesses.

    ``layouts`` maps file_id -> the file's stripe layout (obtainable from
    a live file system via ``fs.lookup(path).layout``).
    """
    loads = [0] * n_ionodes
    ev = trace.events
    data = ev[np.isin(ev["op"], [int(Op.READ), int(Op.AREAD), int(Op.WRITE)])]
    for row in data:
        layout = layouts.get(int(row["file_id"]))
        if layout is None:
            continue
        for ionode, nbytes in layout.span_bytes(
            int(row["offset"]), int(row["nbytes"])
        ).items():
            loads[ionode] += nbytes
    return LoadReport(tuple(loads))


def observed_load(machine: Paragon) -> LoadReport:
    """Bytes each I/O node actually served during a run."""
    return LoadReport(tuple(ion.bytes_served for ion in machine.ionodes))
