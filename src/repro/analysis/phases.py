"""Temporal phase detection.

All three applications show crisp I/O phases (compulsory input,
compute/write cycles, staging rereads, output).  :func:`detect_phases`
segments a trace into phases by binning read/write activity and grouping
consecutive bins with the same dominant behaviour; the result labels each
phase read-intensive, write-intensive, mixed, or idle — the vocabulary of
§5-§7.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..pablo.events import Op
from ..pablo.trace import Trace

__all__ = ["Phase", "detect_phases"]


@dataclass(frozen=True)
class Phase:
    """One detected temporal phase."""

    start: float
    end: float
    label: str  # 'read', 'write', 'mixed', 'idle'
    read_bytes: int
    write_bytes: int

    @property
    def duration(self) -> float:
        return self.end - self.start


def _bin_label(read_b: float, write_b: float, dominance: float) -> str:
    total = read_b + write_b
    if total == 0:
        return "idle"
    if read_b / total >= dominance:
        return "read"
    if write_b / total >= dominance:
        return "write"
    return "mixed"


def detect_phases(
    trace: Trace, window_s: float = 20.0, dominance: float = 0.8
) -> list[Phase]:
    """Segment the trace into phases of homogeneous read/write behaviour.

    Parameters
    ----------
    window_s:
        Bin width; activity inside a bin is aggregated before labelling.
    dominance:
        Fraction of bin volume one direction needs to own the bin.
    """
    if window_s <= 0:
        raise ValueError(f"window_s must be > 0, got {window_s}")
    if not 0.5 < dominance <= 1.0:
        raise ValueError(f"dominance must be in (0.5, 1], got {dominance}")
    ev = trace.events
    if len(ev) == 0:
        return []
    read_mask = np.isin(ev["op"], [int(Op.READ), int(Op.AREAD)])
    write_mask = ev["op"] == int(Op.WRITE)
    t_end = float(ev["timestamp"].max()) + window_s
    edges = np.arange(0.0, t_end + window_s, window_s)
    read_b, _ = np.histogram(
        ev["timestamp"][read_mask], bins=edges, weights=ev["nbytes"][read_mask].astype(float)
    )
    write_b, _ = np.histogram(
        ev["timestamp"][write_mask], bins=edges, weights=ev["nbytes"][write_mask].astype(float)
    )
    labels = [_bin_label(r, w, dominance) for r, w in zip(read_b, write_b)]

    phases: list[Phase] = []
    start_idx = 0
    for i in range(1, len(labels) + 1):
        if i == len(labels) or labels[i] != labels[start_idx]:
            phases.append(
                Phase(
                    start=float(edges[start_idx]),
                    end=float(edges[i]),
                    label=labels[start_idx],
                    read_bytes=int(read_b[start_idx:i].sum()),
                    write_bytes=int(write_b[start_idx:i].sum()),
                )
            )
            start_idx = i
    # Trim leading/trailing idle.
    while phases and phases[0].label == "idle":
        phases.pop(0)
    while phases and phases[-1].label == "idle":
        phases.pop()
    return phases
