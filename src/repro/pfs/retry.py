"""Client-side retry/failover for the striped data path.

When fault injection (:mod:`repro.faults`) is active, chunk requests to
I/O nodes can fail with :class:`~repro.pfs.errors.TransientIOError`
subclasses: dropped in flight (:class:`IOTimeout`), node down
(:class:`IONodeUnavailable`), or rejected during array reconfiguration
(:class:`DegradedService`).  This module gives the PFS client the
standard distributed-systems answer:

* **capped exponential backoff with jitter** — delays grow by
  ``backoff_multiplier`` per attempt up to ``max_backoff_s``; jitter
  decorrelates the retry herds of 128 clients but draws from a *named
  deterministic stream*, so an identical seed + fault plan reproduces a
  byte-identical trace.  The realized delay sequence is monotone
  nondecreasing per chunk (a retry never waits less than its
  predecessor).
* **failover on outage** — while the serving node is down, blind backoff
  would just burn attempts; the re-issue instead races the next backoff
  expiry against the node's :meth:`~repro.machine.ionode.IONode.restart_wait`
  event and fires on whichever comes first.
* **a finite budget** — past ``max_attempts`` the chunk fails the whole
  request with :class:`~repro.pfs.errors.RetryBudgetExceeded`, a typed
  *fatal* error.  Nothing hangs and nothing silently succeeds.

:func:`install_retry` swaps a retrying fan-out into a live file system
as an *instance* attribute, shadowing both :meth:`PFS._fanout` and the
PPFS server-cache variant; fault-free runs never pay for any of this
because the injector only installs it when the plan is non-empty.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Any

from ..sim.core import Event, Timeout
from .errors import IONodeUnavailable, RetryBudgetExceeded, TransientIOError

__all__ = [
    "RetryPolicy",
    "backoff_delay",
    "backoff_schedule",
    "retrying_fanout",
    "install_retry",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget + backoff shape for transient I/O failures.

    The defaults give a cumulative worst-case wait of ~3 simulated
    seconds before a chunk is declared dead — long enough to ride out
    the sub-second outage windows fault plans typically inject, short
    enough that a permanent outage surfaces promptly as
    :class:`~repro.pfs.errors.RetryBudgetExceeded`.
    """

    #: Total issue attempts per chunk (first try included).
    max_attempts: int = 12
    #: Delay before the first re-issue.
    base_backoff_s: float = 0.005
    #: Growth factor per subsequent re-issue.
    backoff_multiplier: float = 2.0
    #: Ceiling on the un-jittered delay.
    max_backoff_s: float = 0.5
    #: Jitter amplitude: each delay is scaled by ``1 + jitter_frac * u``
    #: with ``u`` uniform in [0, 1) from a deterministic stream.
    jitter_frac: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_backoff_s < 0:
            raise ValueError(f"base_backoff_s must be >= 0, got {self.base_backoff_s}")
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if self.max_backoff_s < self.base_backoff_s:
            raise ValueError(
                f"max_backoff_s ({self.max_backoff_s}) must be >= "
                f"base_backoff_s ({self.base_backoff_s})"
            )
        if not 0.0 <= self.jitter_frac <= 1.0:
            raise ValueError(f"jitter_frac must be in [0, 1], got {self.jitter_frac}")

    def to_dict(self) -> dict:
        return {
            "max_attempts": self.max_attempts,
            "base_backoff_s": self.base_backoff_s,
            "backoff_multiplier": self.backoff_multiplier,
            "max_backoff_s": self.max_backoff_s,
            "jitter_frac": self.jitter_frac,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RetryPolicy":
        return cls(**data)


def backoff_delay(policy: RetryPolicy, attempt: int, prev_delay: float, rng) -> float:
    """Delay before re-issuing after failed attempt number ``attempt``.

    ``prev_delay`` is the delay used before ``attempt`` (0.0 when this is
    the first re-issue); the result never shrinks below it, so the
    realized per-chunk delay sequence is monotone nondecreasing, and it
    never exceeds ``max_backoff_s * (1 + jitter_frac)``.  ``rng`` needs
    only a ``random()`` method; one uniform draw is consumed per call.
    """
    if attempt < 1:
        raise ValueError(f"attempt must be >= 1, got {attempt}")
    raw = min(
        policy.base_backoff_s * policy.backoff_multiplier ** (attempt - 1),
        policy.max_backoff_s,
    )
    jittered = raw * (1.0 + policy.jitter_frac * float(rng.random()))
    ceiling = policy.max_backoff_s * (1.0 + policy.jitter_frac)
    return min(max(prev_delay, jittered), ceiling)


def backoff_schedule(policy: RetryPolicy, n: int, rng) -> list[float]:
    """The first ``n`` realized re-issue delays for one chunk.

    Chains :func:`backoff_delay` through its own recurrence — the exact
    sequence the retrying fan-out would wait, given the same stream.
    """
    delays: list[float] = []
    prev = 0.0
    for attempt in range(1, n + 1):
        prev = backoff_delay(policy, attempt, prev, rng)
        delays.append(prev)
    return delays


def retrying_fanout(fs, domain, node: int, f, offset: int, nbytes: int, is_write: bool) -> Event:
    """Striped chunk fan-out with per-chunk retry, failover, and a budget.

    Mirrors :meth:`repro.pfs.filesystem.PFS._fanout` (and the PPFS
    server-cache variant, duck-typed via ``fs.server_cache``): one mesh
    :class:`Timeout` per chunk whose arrival callback submits to the I/O
    node.  The difference is that each chunk's completion callback
    inspects the service event: transient failures re-issue after a
    jittered backoff (racing the node's restart when it is down), fatal
    failures — or a spent budget — fail the returned event with the
    first fatal error once every chunk has settled.

    ``domain`` supplies ``policy`` (a :class:`RetryPolicy`),
    ``backoff_rng`` (a deterministic stream), and ``recorder`` (a
    :class:`repro.faults.FaultRecorder` or None) for RETRY trace rows.
    """
    env = fs.env
    mesh = fs.machine.mesh
    ionodes = fs.machine.ionodes
    io_pos = fs._io_mesh_pos
    policy = domain.policy
    recorder = domain.recorder
    rng = domain.backoff_rng
    telem = getattr(fs, "telemetry", None)
    file_id = f.file_id
    chunks = f.layout.decompose(offset, nbytes)
    done = Event(env)
    if not chunks:
        return done.succeed()
    state: dict[str, Any] = {"remaining": len(chunks), "failure": None}

    pol = getattr(fs, "policies", None)
    server_blocks = getattr(pol, "server_cache_blocks", 0) if pol is not None else 0
    use_cache = server_blocks > 0
    cache_block = pol.server_cache_block_bytes if use_cache else 1
    hit_s = pol.server_cache_hit_s if use_cache else 0.0
    spans = getattr(fs, "spans", None)
    if spans is not None:
        root = spans.fanout_parent
        if root >= 0:
            spans.fanout_parent = -1
        else:
            root = -2 - node
    else:
        root = -1

    def settle() -> None:
        state["remaining"] -= 1
        if not state["remaining"]:
            failure = state["failure"]
            if failure is None:
                done.succeed()
            else:
                done.fail(failure)

    def launch(chunk, attempt: int, prev_delay: float) -> None:
        delay = mesh.message_time(node, io_pos[chunk.ionode], chunk.nbytes)
        if spans is not None:
            spans.mesh_raw.append((root, node, env.now, env.now + delay, chunk.nbytes))
        msg = Timeout(env, delay)
        msg.callbacks.append(
            lambda _ev: issue(chunk, ionodes[chunk.ionode], attempt, prev_delay)
        )

    def issue(chunk, ion, attempt: int, prev_delay: float) -> None:
        insert = None
        if use_cache:
            cache = fs.server_cache(chunk.ionode)
            first = chunk.disk_offset // cache_block
            last = (chunk.disk_offset + chunk.nbytes - 1) // cache_block
            if not is_write and cache.lookup_range(file_id, first, last):
                if spans is not None:
                    spans.add(
                        "scache.hit", chunk.ionode, env.now, env.now, root, chunk.nbytes
                    )
                ion.submit_control(hit_s, root).callbacks.append(
                    lambda ev: finish(ev, chunk, ion, attempt, prev_delay, None)
                )
                return
            insert = (cache, first, last)
        extra = fs._chunk_extra(chunk.nbytes, is_write)
        ion.submit(
            chunk.disk_offset, chunk.nbytes, is_write, extra, root
        ).callbacks.append(
            lambda ev, insert=insert: finish(ev, chunk, ion, attempt, prev_delay, insert)
        )

    def finish(ev: Event, chunk, ion, attempt: int, prev_delay: float, insert) -> None:
        if ev._ok:
            if insert is not None:
                cache, first, last = insert
                cache.insert_range(file_id, first, last)
            settle()
            return
        exc = ev._value
        if not isinstance(exc, TransientIOError):
            if state["failure"] is None:
                state["failure"] = exc
            settle()
            return
        if attempt >= policy.max_attempts:
            if state["failure"] is None:
                state["failure"] = RetryBudgetExceeded(
                    f"chunk (ionode {chunk.ionode}, offset {chunk.disk_offset}, "
                    f"{chunk.nbytes} B) failed {attempt} attempts; last: {exc}"
                )
            settle()
            return
        delay = backoff_delay(policy, attempt, prev_delay, rng)
        failed_at = env.now
        fired = [False]

        def _resubmit(_ev: Event) -> None:
            # Backoff expiry races the node restart; first wins, the
            # other finds the flag set and does nothing.
            if fired[0]:
                return
            fired[0] = True
            if telem is not None:
                telem.retries += 1
            if recorder is not None:
                recorder.retry(
                    env.now, node, file_id, chunk.disk_offset, chunk.nbytes,
                    env.now - failed_at,
                )
            if spans is not None:
                spans.add(
                    "retry.backoff", node, failed_at, env.now,
                    root, chunk.nbytes, float(attempt),
                )
            launch(chunk, attempt + 1, delay)

        Timeout(env, delay).callbacks.append(_resubmit)
        if isinstance(exc, IONodeUnavailable) and not ion.up:
            ion.restart_wait().callbacks.append(_resubmit)

    for chunk in chunks:
        launch(chunk, 1, 0.0)
    return done


def install_retry(fs, domain):
    """Thread retry/failover through a live file system.

    Installs :func:`retrying_fanout` as an *instance* attribute (shadowing
    the class fan-out, including PPFS's cached variant and the
    ``server_cache_blocks == 0`` instance shortcut), and hands the domain
    to the write-behind manager when one exists so flushed chunks retry
    too.  Returns ``fs``.
    """
    fs._fanout = partial(retrying_fanout, fs, domain)
    writeback = getattr(fs, "writeback", None)
    if writeback is not None:
        writeback.retry_domain = domain
    return fs
