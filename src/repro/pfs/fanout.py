"""Shared countdown-completion machinery for striped chunk fan-outs.

Every striped request — plain PFS, the PPFS policy layer, the
write-behind flusher, the batched cohort path — ends the same way: *n*
per-chunk completions fold into one ``done`` event.  This module holds
that pattern once, so the fan-out call sites stay thin and the batched
execution layer has a single integration point.

The helper is allocation-lean by design: one :class:`Event` plus one
closure for the multi-chunk case, and for the (dominant) single-chunk
case no counter at all — the chunk's completion callback succeeds
``done`` directly.  Both shapes schedule exactly the events the previous
hand-rolled copies in ``PFS._fanout`` / ``PPFS._fanout`` did, so trace
hashes are unchanged.
"""

from __future__ import annotations

from typing import Callable

from ..sim.core import Environment, Event

__all__ = ["countdown"]


def countdown(env: Environment, n: int) -> tuple[Event, Callable[[Event], None]]:
    """A ``(done, chunk_done)`` pair: ``done`` fires on the ``n``-th call
    of ``chunk_done``.

    ``chunk_done`` has callback shape (it ignores the event it receives),
    so call sites append it directly to per-chunk completion events.  For
    ``n == 1`` the counter collapses to a bare ``done.succeed`` hop —
    byte-identical scheduling, one closure fewer.
    """
    done = Event(env)
    if n == 1:
        return done, lambda _ev: done.succeed()
    remaining = n

    def chunk_done(_ev: Event) -> None:
        nonlocal remaining
        remaining -= 1
        if not remaining:
            done.succeed()

    return done, chunk_done
