"""Calibrated PFS client/server software cost model.

The paper's per-operation times are dominated by software path lengths,
metadata serialization and contention, not raw media speed.  This model
collects every software constant in one place; the defaults are calibrated
so the three application skeletons land near the per-op means in Tables
1, 3 and 5 (see EXPERIMENTS.md for paper-vs-measured):

* single-client data throughput ~10 MB/s (RENDER measured ~9.5 MB/s) via
  ``client_byte_cost_s``;
* collective creates ~0.4 s at the metadata server (HTF integral phase,
  where opens are 63 % of I/O time);
* shared-file seeks/writes serialized per file (ESCAT, where seeks+writes
  are ~96 % of I/O time);
* cheap private-file seeks (HTF SCF rewinds: ~2 ms each).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..util.validation import check_nonneg, check_positive

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """All software timing constants of the PFS client and servers."""

    # -- client side -------------------------------------------------------
    #: Fixed client software cost per synchronous operation.
    client_op_overhead_s: float = 0.0015
    #: Client per-byte copy/packetization cost; bounds one client's data
    #: throughput at ~1/cost bytes/s (defaults to 10 MB/s).
    client_byte_cost_s: float = 1.0e-7
    #: Cost of issuing an asynchronous read (returns immediately).
    aread_issue_s: float = 0.010
    #: Client read-buffer block size (stdio-style buffering of small
    #: sequential reads); 0 disables buffering.
    read_buffer_bytes: int = 4096
    #: Client write-buffer threshold: writes smaller than this absorb into
    #: the buffer and flush on seek/close/flush; 0 disables.
    write_buffer_bytes: int = 65536

    # -- metadata server -----------------------------------------------------
    #: Service time to open an existing file.
    open_service_s: float = 0.048
    #: Service time to create a file (stripe allocation on all I/O nodes).
    create_service_s: float = 0.42
    #: Service time to close a file.
    close_service_s: float = 0.019
    #: Service time for lsize (file-size query).
    lsize_service_s: float = 0.10
    #: One-time cold-start cost added to a node's first open (server
    #: paging/mount effects seen in HTF psetup).
    cold_open_s: float = 7.0

    # -- shared-file coordination --------------------------------------------
    #: Token hold time for a seek on a *shared* file (metadata round trip).
    shared_seek_hold_s: float = 0.019
    #: Extra token hold for a shared-file atomic write, beyond data path.
    shared_write_hold_s: float = 0.002
    #: Token hold for M_LOG / M_RECORD FCFS ordering.
    order_token_hold_s: float = 0.002

    # -- I/O-node interactions -------------------------------------------------
    #: Service time of a flush visit at the file's primary I/O node.
    flush_service_s: float = 0.035
    #: Extra I/O-node service per *read* chunk (PFS server read path —
    #: the cost that makes medium-size reads slow; HTF SCF's ~0.6 s per
    #: 80 KB read emerges from this plus queueing).
    read_chunk_extra_s: float = 0.040
    #: Extra I/O-node service per *write* chunk, per byte (synchronous
    #: write-through on the server; makes HTF's 80 KB integral writes
    #: cost ~0.23 s while leaving ESCAT's 2 KB writes cheap).
    write_chunk_extra_per_byte_s: float = 2.5e-6

    def __post_init__(self) -> None:
        check_nonneg(self.client_op_overhead_s, "client_op_overhead_s")
        check_nonneg(self.client_byte_cost_s, "client_byte_cost_s")
        check_nonneg(self.aread_issue_s, "aread_issue_s")
        check_nonneg(self.read_buffer_bytes, "read_buffer_bytes")
        check_nonneg(self.write_buffer_bytes, "write_buffer_bytes")
        check_positive(self.open_service_s, "open_service_s")
        check_positive(self.create_service_s, "create_service_s")
        check_positive(self.close_service_s, "close_service_s")
        check_nonneg(self.lsize_service_s, "lsize_service_s")
        check_nonneg(self.cold_open_s, "cold_open_s")
        check_nonneg(self.shared_seek_hold_s, "shared_seek_hold_s")
        check_nonneg(self.shared_write_hold_s, "shared_write_hold_s")
        check_nonneg(self.order_token_hold_s, "order_token_hold_s")
        check_nonneg(self.flush_service_s, "flush_service_s")
        check_nonneg(self.read_chunk_extra_s, "read_chunk_extra_s")
        check_nonneg(self.write_chunk_extra_per_byte_s, "write_chunk_extra_per_byte_s")
