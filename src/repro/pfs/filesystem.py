"""The Intel PFS model: open/close/read/write/seek/lsize/flush + async reads.

Every operation is a simulation-process generator: application skeletons
``yield from`` them, and the elapsed simulated time *is* the operation
duration Pablo-style instrumentation records.

The model charges three kinds of cost:

1. **Client software** — fixed per-op overhead, per-byte copy cost (which
   bounds a single client at ~10 MB/s, RENDER's measured ceiling), async
   issue cost, and stdio-style read/write buffering of small requests.
2. **Metadata serialization** — opens/closes/lsize visit a single metadata
   server resource; creates are expensive (stripe allocation), which is
   what makes HTF's 128 simultaneous creates dominate its integral phase.
3. **Data path** — requests decompose into per-I/O-node chunks
   (:mod:`repro.pfs.striping`), each paying mesh transfer plus queued
   RAID-3 service.  Shared-file atomic writes and shared-file seeks
   serialize on a per-file token, reproducing ESCAT's seek/write costs.

Mode semantics (:mod:`repro.pfs.modes`) are enforced: shared pointers,
M_SYNC node-order turns, M_RECORD fixed records with node-interleaved
default placement, M_GLOBAL collective reads, M_ASYNC's missing atomicity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..machine.paragon import Paragon
from ..sim.core import Environment, Event, Timeout
from ..sim.resources import Resource
from ..spans.record import (
    LEAF_BB_ABSORB,
    LEAF_MESH_BCAST,
    LEAF_SYNC_WAIT,
    LEAF_TOKEN_ORDER,
    LEAF_TOKEN_SEEK,
    LEAF_TOKEN_WRITE,
)
from ..util.units import MB
from .costs import CostModel
from .errors import (
    BadFileDescriptor,
    FileExists,
    FileNotFound,
    ModeError,
    PFSError,
)
from .fanout import countdown
from .file import PFSFile
from .modes import AccessMode
from .striping import StripeLayout

__all__ = ["PFS", "AreadHandle", "SEEK_SET", "SEEK_CUR", "SEEK_END"]

SEEK_SET = 0
SEEK_CUR = 1
SEEK_END = 2

#: Physical region reserved per file on each I/O node by the simple
#: allocator; bases only influence seek distances, so overlap-free
#: spacing is all that matters.
_FILE_REGION_BYTES = 128 * MB


class AreadHandle:
    """Completion handle for an asynchronous read (NX ``iread`` analog)."""

    __slots__ = ("event", "nbytes", "file_id", "offset", "issued_at")

    def __init__(self, event: Event, nbytes: int, file_id: int, offset: int, issued_at: float):
        self.event = event
        self.nbytes = nbytes
        self.file_id = file_id
        self.offset = offset
        self.issued_at = issued_at

    @property
    def complete(self) -> bool:
        return self.event.triggered


@dataclass
class _OpenFile:
    """Per-(node, fd) state."""

    file: PFSFile
    # Per-descriptor file pointer (shared-pointer modes ignore it).
    pos: int = 0
    # Client read buffer: buffered logical extent [start, end).
    rbuf_start: int = -1
    rbuf_end: int = -1
    # Client write buffer: pending extent [start, start+length).
    wbuf_start: int = -1
    wbuf_len: int = 0
    # M_RECORD slot counters.
    records_read: int = 0
    records_written: int = 0
    # Actual file offset of the most recent read/write (differs from the
    # pre-op pointer under slot/shared-pointer modes); -1 before any op.
    last_op_offset: int = -1
    # Pending async reads (drained at close).
    pending: list[AreadHandle] = field(default_factory=list)


class PFS:
    """Parallel file system instance bound to a :class:`Paragon` machine.

    Parameters
    ----------
    machine:
        The machine whose I/O nodes and mesh carry the data.
    costs:
        Software cost model; defaults to the calibrated constants.
    track_content:
        Store real bytes per file (for data-integrity tests).  Large runs
        leave this off and track sizes only.
    """

    def __init__(
        self,
        machine: Paragon,
        costs: Optional[CostModel] = None,
        track_content: bool = False,
    ):
        self.machine = machine
        self.env: Environment = machine.env
        self.costs = costs or CostModel()
        self.track_content = track_content
        #: Telemetry live counters (repro.telemetry); None = disabled, and
        #: every hook below then costs one attribute check per operation.
        self.telemetry = None
        #: Span recorder (repro.spans); None = off, and the data path then
        #: costs one attribute check per request.
        self.spans = None
        #: Fluid-fidelity servicer (repro.sim.fluid); None = event mode,
        #: and applications then run every phase discretely.
        self.fluid = None
        #: Burst-buffer tier, when the machine has one; None = absent, and
        #: the data path then costs one attribute check per transfer.
        self._bb = getattr(machine, "burstbuffer", None)
        if self._bb is not None:
            self._bb.bind(self)
        self._meta_server = Resource(self.env, capacity=1)
        self._copy_engine: dict[int, Resource] = {}
        self._files: dict[str, PFSFile] = {}
        self._fd_tables: dict[int, dict[int, _OpenFile]] = {}
        self._next_fd: dict[int, int] = {}
        self._next_file_id = 3  # Unix-style: 0-2 are stdio
        self._next_base = 0
        # I/O-node mesh positions are fixed for the machine's lifetime;
        # precompute so the per-chunk fan-out does a list index, not
        # arithmetic over three attribute chains.
        mesh_size = machine.config.mesh.size
        stride = max(1, mesh_size // len(machine.ionodes))
        self._io_mesh_pos = [
            (i * stride) % mesh_size for i in range(len(machine.ionodes))
        ]

    # ------------------------------------------------------------------ utils
    def _io_mesh_node(self, ionode_index: int) -> int:
        """Mesh position representing an I/O node (spread along the mesh)."""
        return self._io_mesh_pos[ionode_index]

    def _copier(self, node: int) -> Resource:
        """Per-node client copy engine (serializes async completions)."""
        res = self._copy_engine.get(node)
        if res is None:
            res = Resource(self.env, capacity=1)
            self._copy_engine[node] = res
        return res

    def _entry(self, node: int, fd: int) -> _OpenFile:
        try:
            return self._fd_tables[node][fd]
        except KeyError:
            raise BadFileDescriptor(f"node {node} has no open fd {fd}") from None

    def fluid_ok(self, f: PFSFile) -> bool:
        """May operations on ``f`` be priced in closed form?

        The base data path qualifies except where the burst-buffer tier
        intercepts transfers (its drain pipeline is stateful).  Subclasses
        that interpose caches or write-behind must override and decline
        whenever that state could change outcomes (see
        :mod:`repro.sim.fluid`).
        """
        return not (self._bb is not None and f.burst_tier)

    def lookup(self, path: str) -> Optional[PFSFile]:
        """The file object for ``path`` if it exists."""
        return self._files.get(path)

    def exists(self, path: str) -> bool:
        return path in self._files

    def ensure(self, path: str, file_id: Optional[int] = None, size: int = 0) -> PFSFile:
        """Create ``path`` administratively (no simulated cost).

        Models files that pre-exist a run: input datasets staged before
        the job, or scratch files left by a previous execution (ESCAT's
        quadrature staging files).  ``size`` presets the logical size.
        """
        if path in self._files:
            f = self._files[path]
            f.size = max(f.size, size)
            return f
        if file_id is None:
            file_id = self._next_file_id
            self._next_file_id += 1
        else:
            self._next_file_id = max(self._next_file_id, file_id + 1)
        layout = StripeLayout(
            n_ionodes=len(self.machine.ionodes),
            first_ionode=file_id % len(self.machine.ionodes),
            base=self._next_base,
        )
        self._next_base += _FILE_REGION_BYTES
        f = PFSFile(
            self.env, path, file_id, layout,
            mode=AccessMode.M_UNIX, track_content=self.track_content,
        )
        f.size = size
        self._files[path] = f
        return f

    def mark_burst_tier(self, path: str, enabled: bool = True) -> PFSFile:
        """Route ``path``'s writes through the burst-buffer log.

        A client-side placement hint (no simulated cost), analogous to
        staging a file on the fast tier.  Harmless when the machine has
        no burst buffer — the data path checks the tier flag only when a
        buffer exists.
        """
        f = self._files.get(path)
        if f is None:
            raise FileNotFound(path)
        f.burst_tier = enabled
        return f

    def setiomode(
        self,
        node: int,
        fd: int,
        mode: AccessMode,
        record_size: Optional[int] = None,
        parties: Optional[int] = None,
    ):
        """Change an open file's access mode (Intel ``setiomode``).

        A cheap collective metadata operation; resets the shared pointer
        and the caller's record counters.
        """
        from .modes import semantics as _semantics

        entry = self._entry(node, fd)
        f = entry.file
        if entry.wbuf_len:
            yield from self._flush_write_buffer(node, entry)
        yield self.env.timeout(self.costs.client_op_overhead_s)
        new_sem = _semantics(mode)
        if new_sem.fixed_records:
            if record_size is None and f.record_size is None:
                raise ModeError(f"{mode} requires a record_size")
        f.mode = mode
        f.sem = new_sem
        if record_size is not None:
            f.record_size = record_size
        if parties is not None:
            f.declared_parties = parties
        f.shared_pointer = 0
        f.sync_parties = None
        f.record_parties = None
        entry.records_read = 0
        entry.records_written = 0
        entry.rbuf_start = entry.rbuf_end = -1

    def tell(self, node: int, fd: int) -> int:
        """Current pointer position (no cost; client-side state)."""
        entry = self._entry(node, fd)
        return entry.file.tell(entry)

    def file_of(self, node: int, fd: int) -> PFSFile:
        """The file behind a descriptor."""
        return self._entry(node, fd).file

    def last_op_offset(self, node: int, fd: int) -> int:
        """Actual file offset of the descriptor's most recent data
        operation (slot/shared-pointer modes position ops away from the
        caller's pre-op pointer); -1 before any data op."""
        return self._entry(node, fd).last_op_offset

    # ------------------------------------------------------------- open/close
    def open(
        self,
        node: int,
        path: str,
        mode: AccessMode = AccessMode.M_UNIX,
        create: bool = False,
        exclusive: bool = False,
        record_size: Optional[int] = None,
        file_id: Optional[int] = None,
        cold: bool = False,
        parties: Optional[int] = None,
    ):
        """Open (or create) ``path``; returns the new fd.

        ``cold`` adds the one-time cold-start cost (server paging /
        staging effects) observed on first-program opens.  ``parties``
        declares how many nodes participate in collective/ordered modes
        (M_SYNC/M_GLOBAL) — the ``setiomode`` partition size; without it
        the opener count at the first ordered operation is used.
        """
        existed = path in self._files
        if not existed and not create:
            raise FileNotFound(path)
        if existed and create and exclusive:
            raise FileExists(path)
        f = self._files.get(path)
        if f is not None and f.mode is not mode and f.openers:
            raise ModeError(
                f"{path!r} already open in {f.mode}; cannot also open in {mode}"
            )

        # Register the file synchronously so concurrent creators share one
        # object (only the first arrival pays the create cost).
        if f is None:
            if file_id is None:
                file_id = self._next_file_id
                self._next_file_id += 1
            else:
                self._next_file_id = max(self._next_file_id, file_id + 1)
            layout = StripeLayout(
                n_ionodes=len(self.machine.ionodes),
                first_ionode=file_id % len(self.machine.ionodes),
                base=self._next_base,
            )
            self._next_base += _FILE_REGION_BYTES
            f = PFSFile(
                self.env,
                path,
                file_id,
                layout,
                mode=mode,
                record_size=record_size,
                track_content=self.track_content,
            )
            self._files[path] = f
        elif record_size is not None and f.record_size not in (None, record_size):
            raise ModeError(
                f"{path!r} opened with record_size={f.record_size}, got {record_size}"
            )
        elif not f.openers and f.mode is not mode:
            # First opener of an idle file sets its mode (setiomode-at-open).
            from .modes import semantics as _semantics

            new_sem = _semantics(mode)
            if new_sem.fixed_records and record_size is None and f.record_size is None:
                raise ModeError(f"{mode} requires a record_size")
            f.mode = mode
            f.sem = new_sem
            if record_size is not None:
                f.record_size = record_size

        # Metadata server visit.
        service = self.costs.open_service_s if existed else self.costs.create_service_s
        if cold:
            service += self.costs.cold_open_s
        req = self._meta_server.request()
        yield req
        try:
            yield self.env.timeout(service)
        finally:
            self._meta_server.release(req)
        if parties is not None:
            if parties < 1:
                raise PFSError(f"parties must be >= 1, got {parties}")
            if f.declared_parties not in (None, parties):
                raise ModeError(
                    f"{path!r} opened with parties={f.declared_parties}, got {parties}"
                )
            f.declared_parties = parties
        f.openers.add(node)
        table = self._fd_tables.setdefault(node, {})
        fd = self._next_fd.get(node, 3)
        self._next_fd[node] = fd + 1
        table[fd] = _OpenFile(file=f)
        telem = self.telemetry
        if telem is not None:
            telem.opens += 1
        return fd

    def close(self, node: int, fd: int):
        """Flush buffered writes, drain async reads, release the fd."""
        entry = self._entry(node, fd)
        f = entry.file
        if entry.wbuf_len:
            yield from self._flush_write_buffer(node, entry)
        for handle in entry.pending:
            if not handle.complete:
                yield handle.event
        entry.pending.clear()
        req = self._meta_server.request()
        yield req
        try:
            yield self.env.timeout(self.costs.close_service_s)
        finally:
            self._meta_server.release(req)
        del self._fd_tables[node][fd]
        f.openers.discard(node)
        f.dirty_nodes.discard(node)

    # -------------------------------------------------------------- data path
    def _chunk_extra(self, nbytes: int, is_write: bool) -> float:
        """Server-path software cost per chunk (see CostModel)."""
        if is_write:
            return nbytes * self.costs.write_chunk_extra_per_byte_s
        return self.costs.read_chunk_extra_s

    def _fanout(self, node: int, f: PFSFile, offset: int, nbytes: int, is_write: bool) -> Event:
        """Start the striped per-I/O-node chunk transfers of one request;
        the returned event fires when the last chunk completes.

        A shared :func:`~repro.pfs.fanout.countdown` replaces the old
        per-chunk closure-generator + Process + AllOf fan-out (which cost
        two events and a process per 64 KB chunk): each chunk is a
        mesh-delay :class:`Timeout` whose callback submits the chunk to
        its I/O node and chains the countdown onto the service-done
        event.  All hops in both formulations are zero-delay, so
        completion times are unchanged.
        """
        env = self.env
        mesh = self.machine.mesh
        ionodes = self.machine.ionodes
        io_pos = self._io_mesh_pos
        chunks = f.layout.decompose(offset, nbytes)
        done, chunk_done = countdown(env, len(chunks))
        spans = self.spans
        if spans is not None:
            parent = spans.fanout_parent
            if parent >= 0:
                spans.fanout_parent = -1
            else:
                parent = -2 - node
            mesh_ext = spans.mesh_raw.append
            now = env.now
        for chunk in chunks:
            ion = ionodes[chunk.ionode]
            extra = self._chunk_extra(chunk.nbytes, is_write)
            delay = mesh.message_time(node, io_pos[chunk.ionode], chunk.nbytes)
            msg = Timeout(env, delay)

            if spans is None:

                def _arrived(_ev, ion=ion, chunk=chunk, extra=extra):
                    ion.submit(
                        chunk.disk_offset, chunk.nbytes, is_write, extra
                    ).callbacks.append(chunk_done)

            else:
                mesh_ext((parent, node, now, now + delay, chunk.nbytes))

                def _arrived(_ev, ion=ion, chunk=chunk, extra=extra, parent=parent):
                    # Thread the causal parent through the async mesh hop
                    # as a submit argument.
                    ion.submit(
                        chunk.disk_offset, chunk.nbytes, is_write, extra, parent
                    ).callbacks.append(chunk_done)

            msg.callbacks.append(_arrived)
        return done

    def _transfer(self, node: int, f: PFSFile, offset: int, nbytes: int, is_write: bool):
        """Move ``nbytes`` between the client and the striped I/O nodes.

        Burst-tier files on a machine with a burst buffer divert: writes
        absorb into the host-side log (the drainer destages them later),
        reads first wait for the file's logged bytes to become durable.
        """
        if nbytes <= 0:
            return 0
        bb = self._bb
        if bb is not None and f.burst_tier:
            spans = self.spans
            if is_write:
                if spans is not None:
                    env = self.env
                    t0 = env.now
                yield from bb.absorb(node, f, offset, nbytes)
                if spans is not None:
                    spans.leaf_raw.append(
                        (LEAF_BB_ABSORB, node, t0, env.now, nbytes)
                    )
            else:
                barrier = bb.read_barrier(f.file_id)
                if barrier is not None:
                    if spans is not None:
                        spans.wrap_wait("bb.readbarrier", node, barrier)
                    yield barrier
                yield self._fanout(node, f, offset, nbytes, False)
        else:
            yield self._fanout(node, f, offset, nbytes, is_write)
        # Client copy/packetization cost (the single-client throughput bound).
        yield self.env.timeout(nbytes * self.costs.client_byte_cost_s)
        return nbytes

    def _flush_write_buffer(self, node: int, entry: _OpenFile):
        """Push the client write buffer to the data path."""
        f = entry.file
        start, length = entry.wbuf_start, entry.wbuf_len
        entry.wbuf_start, entry.wbuf_len = -1, 0
        if length:
            yield from self._transfer(node, f, start, length, is_write=True)
            f.note_write(node, start, length)

    # ------------------------------------------------------------------- read
    def read(self, node: int, fd: int, nbytes: int, data_out: bool = False):
        """Synchronous read at the current pointer; returns bytes read.

        With ``data_out`` (and content tracking enabled) returns
        ``(count, bytes)`` instead.
        """
        if nbytes < 0:
            raise PFSError(f"negative read size {nbytes}")
        entry = self._entry(node, fd)
        f = entry.file
        f.check_record(nbytes)
        c = self.costs
        yield self.env.timeout(c.client_op_overhead_s)

        # Resolve the offset under the mode's discipline.
        if f.sem.collective:
            offset = f.tell(entry)
            count = yield from self._global_read(node, entry, nbytes)
        elif f.sem.node_order:
            if f.sync_parties is None:
                f.sync_parties = f.declared_parties or max(1, len(f.openers))
            n = f.sync_parties
            spans = self.spans
            if spans is not None:
                env = self.env
                t0 = env.now
            yield f.sync_wait(node, n)
            if spans is not None:
                spans.leaf_raw.append((LEAF_SYNC_WAIT, node, t0, env.now, 0.0))
            try:
                offset = f.tell(entry)
                count = f.readable_bytes(offset, nbytes)
                yield from self._transfer(node, f, offset, count, is_write=False)
                f.advance(entry, count)
            finally:
                f.sync_done(n)
        elif f.sem.fcfs_order:
            spans = self.spans
            if spans is not None:
                env = self.env
                t0 = env.now
            yield f.order_token.acquire()
            if spans is not None:
                spans.leaf_raw.append((LEAF_TOKEN_ORDER, node, t0, env.now, 0.0))
            try:
                yield self.env.timeout(c.order_token_hold_s)
                if f.sem.fixed_records:
                    if f.record_parties is None:
                        f.record_parties = f.declared_parties or max(1, len(f.openers))
                    offset = f.record_slot(node, entry.records_read, f.record_parties)
                    entry.records_read += 1
                else:
                    offset = f.tell(entry)
                    f.advance(entry, f.readable_bytes(offset, nbytes))
            finally:
                f.order_token.release()
            count = f.readable_bytes(offset, nbytes)
            yield from self._transfer(node, f, offset, count, is_write=False)
            if f.sem.fixed_records:
                f.set_pointer(entry, offset + count)
        else:
            offset = f.tell(entry)
            count = f.readable_bytes(offset, nbytes)
            hit = entry.rbuf_start <= offset and offset + count <= entry.rbuf_end
            if count and not hit and count <= c.read_buffer_bytes:
                # Fetch a whole buffer block around the request (stdio-style).
                block_start = offset - offset % max(1, c.read_buffer_bytes)
                block_len = f.readable_bytes(block_start, c.read_buffer_bytes)
                yield from self._transfer(node, f, block_start, block_len, False)
                entry.rbuf_start, entry.rbuf_end = block_start, block_start + block_len
            elif count and not hit:
                yield from self._transfer(node, f, offset, count, is_write=False)
            f.advance(entry, count)
        entry.last_op_offset = offset
        telem = self.telemetry
        if telem is not None:
            telem.reads += 1
            telem.read_bytes += count
        if data_out:
            return count, f.read_content(offset, count) if f.track_content else b""
        return count

    def _global_read(self, node: int, entry: _OpenFile, nbytes: int):
        """M_GLOBAL: every opener issues the same read; one physical I/O
        whose result is broadcast, and nobody proceeds before the data
        lands everywhere."""
        f = entry.file
        parties = f.declared_parties or max(1, len(f.openers))
        offset = f.tell(entry)
        count = f.readable_bytes(offset, nbytes)
        arrived, done, leader = f.global_arrive(parties)
        spans = self.spans
        if leader:
            yield arrived
            yield from self._transfer(node, f, offset, count, is_write=False)
            if spans is not None:
                env = self.env
                t0 = env.now
            yield self.env.timeout(
                self.machine.mesh.broadcast_time(node, parties, count)
            )
            if spans is not None:
                spans.leaf_raw.append(
                    (LEAF_MESH_BCAST, node, t0, env.now, count)
                )
            f.advance(entry, count)
            done.succeed(count)
        else:
            if spans is not None:
                spans.wrap_wait("bcast.wait", node, done)
            yield done
        return count

    # ------------------------------------------------------------------ write
    def write(self, node: int, fd: int, nbytes: int, data: Optional[bytes] = None):
        """Synchronous write at the current pointer; returns bytes written."""
        if nbytes < 0:
            raise PFSError(f"negative write size {nbytes}")
        if data is not None and len(data) != nbytes:
            raise PFSError(f"data length {len(data)} != nbytes {nbytes}")
        entry = self._entry(node, fd)
        f = entry.file
        f.check_record(nbytes)
        c = self.costs
        telem = self.telemetry
        if telem is not None:
            telem.writes += 1
            telem.write_bytes += nbytes
        yield self.env.timeout(c.client_op_overhead_s)
        entry.rbuf_start = entry.rbuf_end = -1  # writes invalidate read buffer

        if f.sem.collective:
            raise ModeError("M_GLOBAL files are read-only in this model")

        if f.sem.node_order:
            if f.sync_parties is None:
                f.sync_parties = f.declared_parties or max(1, len(f.openers))
            n = f.sync_parties
            spans = self.spans
            if spans is not None:
                env = self.env
                t0 = env.now
            yield f.sync_wait(node, n)
            if spans is not None:
                spans.leaf_raw.append((LEAF_SYNC_WAIT, node, t0, env.now, 0.0))
            try:
                offset = f.tell(entry)
                yield from self._locked_write(node, f, offset, nbytes, data)
                f.advance(entry, nbytes)
            finally:
                f.sync_done(n)
            entry.last_op_offset = offset
            return nbytes

        if f.sem.fcfs_order:
            spans = self.spans
            if spans is not None:
                env = self.env
                t0 = env.now
            yield f.order_token.acquire()
            if spans is not None:
                spans.leaf_raw.append((LEAF_TOKEN_ORDER, node, t0, env.now, 0.0))
            try:
                yield self.env.timeout(c.order_token_hold_s)
                if f.sem.fixed_records:
                    if f.record_parties is None:
                        f.record_parties = f.declared_parties or max(1, len(f.openers))
                    offset = f.record_slot(node, entry.records_written, f.record_parties)
                    entry.records_written += 1
                else:
                    offset = f.tell(entry)
                    f.advance(entry, nbytes)
            finally:
                f.order_token.release()
            yield from self._locked_write(node, f, offset, nbytes, data)
            if f.sem.fixed_records:
                f.set_pointer(entry, offset + nbytes)
            entry.last_op_offset = offset
            return nbytes

        offset = f.tell(entry)
        buffered = (
            c.write_buffer_bytes > 0
            and 0 < nbytes <= c.write_buffer_bytes
            and not f.shared
        )
        if buffered:
            contiguous = entry.wbuf_start + entry.wbuf_len == offset
            if entry.wbuf_len and not contiguous:
                yield from self._flush_write_buffer(node, entry)
            if entry.wbuf_len == 0:
                entry.wbuf_start = offset
            entry.wbuf_len += nbytes
            if f.track_content and data is not None:
                f.write_content(offset, data)
            f.note_write(node, offset, nbytes)
            f.advance(entry, nbytes)
            if entry.wbuf_len >= c.write_buffer_bytes:
                yield from self._flush_write_buffer(node, entry)
            entry.last_op_offset = offset
            return nbytes

        if entry.wbuf_len:
            yield from self._flush_write_buffer(node, entry)
        yield from self._locked_write(node, f, offset, nbytes, data)
        f.advance(entry, nbytes)
        entry.last_op_offset = offset
        return nbytes

    def _locked_write(self, node: int, f: PFSFile, offset: int, nbytes: int, data):
        """Write with per-file atomicity locking when the mode requires it."""
        lock_needed = f.sem.atomic and f.shared
        if lock_needed:
            spans = self.spans
            if spans is not None:
                env = self.env
                t0 = env.now
            yield f.write_token.acquire()
            if spans is not None:
                spans.leaf_raw.append((LEAF_TOKEN_WRITE, node, t0, env.now, 0.0))
        try:
            if lock_needed:
                yield self.env.timeout(self.costs.shared_write_hold_s)
            yield from self._transfer(node, f, offset, nbytes, is_write=True)
        finally:
            if lock_needed:
                f.write_token.release()
        if f.track_content and data is not None:
            f.write_content(offset, data)
        f.note_write(node, offset, nbytes)

    # ------------------------------------------------------------------- seek
    def seek(self, node: int, fd: int, offset: int, whence: int = SEEK_SET):
        """Position the file pointer; returns the new offset.

        Shared-file seeks serialize on the file token (a metadata round
        trip in PFS — the cost that dominates ESCAT's I/O time); seeks on
        privately-open files are a cheap client-side operation.
        """
        entry = self._entry(node, fd)
        f = entry.file
        if not f.sem.seekable:
            raise ModeError(f"{f.mode} files are not seekable")
        if whence == SEEK_SET:
            target = offset
        elif whence == SEEK_CUR:
            target = f.tell(entry) + offset
        elif whence == SEEK_END:
            target = f.size + offset
        else:
            raise PFSError(f"bad whence {whence}")
        if target < 0:
            raise PFSError(f"seek to negative offset {target}")
        telem = self.telemetry
        if telem is not None:
            telem.seeks += 1
        if entry.wbuf_len:
            yield from self._flush_write_buffer(node, entry)
        entry.rbuf_start = entry.rbuf_end = -1
        yield self.env.timeout(self.costs.client_op_overhead_s)
        if f.shared:
            spans = self.spans
            if spans is not None:
                env = self.env
                t0 = env.now
            yield f.write_token.acquire()
            if spans is not None:
                spans.leaf_raw.append((LEAF_TOKEN_SEEK, node, t0, env.now, 0.0))
            try:
                yield self.env.timeout(self.costs.shared_seek_hold_s)
            finally:
                f.write_token.release()
        f.set_pointer(entry, target)
        return target

    def unlink(self, node: int, path: str):
        """Remove a file (metadata operation).

        Refuses while any node holds the file open — the simple semantics
        production scratch-file management relied on.
        """
        f = self._files.get(path)
        if f is None:
            raise FileNotFound(path)
        if f.openers:
            raise PFSError(f"cannot unlink {path!r}: open on nodes {sorted(f.openers)}")
        req = self._meta_server.request()
        yield req
        try:
            yield self.env.timeout(self.costs.close_service_s)
        finally:
            self._meta_server.release(req)
        del self._files[path]

    def rename(self, node: int, old: str, new: str):
        """Rename a file (metadata operation; fails if ``new`` exists)."""
        f = self._files.get(old)
        if f is None:
            raise FileNotFound(old)
        if new in self._files:
            raise FileExists(new)
        req = self._meta_server.request()
        yield req
        try:
            yield self.env.timeout(self.costs.close_service_s)
        finally:
            self._meta_server.release(req)
        del self._files[old]
        f.path = new
        self._files[new] = f

    # ------------------------------------------------------- metadata queries
    def lsize(self, node: int, fd: int):
        """File-size query (PFS ``lsize``); returns the size."""
        entry = self._entry(node, fd)
        req = self._meta_server.request()
        yield req
        try:
            yield self.env.timeout(self.costs.lsize_service_s)
        finally:
            self._meta_server.release(req)
        return entry.file.size

    def flush(self, node: int, fd: int):
        """Force buffered data out (Fortran ``forflush`` analog).

        A dirty file costs a visit to the file's primary I/O node; a clean
        one is a client-side no-op.
        """
        entry = self._entry(node, fd)
        f = entry.file
        yield self.env.timeout(self.costs.client_op_overhead_s)
        if entry.wbuf_len:
            yield from self._flush_write_buffer(node, entry)
        if node in f.dirty_nodes:
            ion = self.machine.ionodes[f.layout.first_ionode]
            yield self.env.process(ion.visit(self.costs.flush_service_s))
            f.dirty_nodes.discard(node)

    # ------------------------------------------------------------ async reads
    def aread(self, node: int, fd: int, nbytes: int):
        """Issue an asynchronous read; returns an :class:`AreadHandle`.

        The issuing call costs only ``aread_issue_s``; the transfer runs in
        the background, and its client-side copy serializes through the
        node's copy engine (bounding aggregate async throughput exactly as
        a real client's memory system would).
        """
        if nbytes < 0:
            raise PFSError(f"negative read size {nbytes}")
        entry = self._entry(node, fd)
        f = entry.file
        if f.sem.shared_pointer or f.sem.fixed_records:
            raise ModeError(f"async reads unsupported in {f.mode}")
        offset = f.tell(entry)
        count = f.readable_bytes(offset, nbytes)
        f.advance(entry, count)  # pointer advances at issue time (NX semantics)
        telem = self.telemetry
        if telem is not None:
            telem.areads += 1
            telem.read_bytes += count
        yield self.env.timeout(self.costs.aread_issue_s)
        done = Event(self.env)
        handle = AreadHandle(done, count, f.file_id, offset, self.env.now)
        spans = self.spans
        bg_sid = (
            spans.store.begin("aread.bg", node, self.env.now, -1, count)
            if spans is not None
            else -1
        )

        def _background():
            if count:
                if spans is not None:
                    # The fan-out runs outside the issuing op's lifetime;
                    # parent its chunks under the background root span.
                    spans.fanout_parent = bg_sid
                yield self._fanout(node, f, offset, count, is_write=False)
                copier = self._copier(node)
                creq = copier.request()
                yield creq
                try:
                    yield self.env.timeout(count * self.costs.client_byte_cost_s)
                finally:
                    copier.release(creq)
            if spans is not None:
                spans.store.finish(bg_sid, self.env.now)
            done.succeed(count)

        self.env.process(_background())
        entry.pending.append(handle)
        return handle

    def iowait(self, node: int, handle: AreadHandle):
        """Block until an async read completes; returns bytes read."""
        if not handle.complete:
            yield handle.event
        else:
            yield self.env.timeout(0.0)
        return handle.nbytes
