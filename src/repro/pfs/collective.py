"""Collective-I/O strategies (§8).

The paper: "Such I/O patterns could be expressed as collective
operations [1, 5, 11] to allow the filesystem to optimize performance."
This module implements the strategy space those references span, for the
canonical pattern in the study — N nodes loading a block-cyclically
distributed file:

* **independent** — every rank seeks and reads each of its own blocks
  (many small strided requests; the naive expression);
* **root-broadcast** — rank 0 reads the whole file sequentially and
  broadcasts (what ESCAT and RENDER actually did, §5.2/§6.2);
* **two-phase** — ranks read large *contiguous* shares in parallel, then
  redistribute over the mesh to the block-cyclic target (Bordawekar,
  del Rosario & Choudhary [1]);
* **disk-directed** — the I/O nodes stream their resident stripes
  directly to the clients in one pass (Kotz [11]); clients receive in
  parallel.

:func:`collective_read` runs one strategy to completion and reports wall
time plus operation counts, so the strategies are directly comparable on
identical machines.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.paragon import Paragon
from .filesystem import PFS

__all__ = ["CollectiveResult", "STRATEGIES", "collective_read"]

STRATEGIES = ("independent", "root-broadcast", "two-phase", "disk-directed")


@dataclass(frozen=True)
class CollectiveResult:
    """Outcome of one collective read."""

    strategy: str
    wall_s: float
    application_requests: int
    ionode_requests: int
    bytes_read: int


def _blocks_of(rank: int, nranks: int, n_blocks: int) -> list[int]:
    """Block-cyclic ownership: rank r owns blocks r, r+N, r+2N, ..."""
    return list(range(rank, n_blocks, nranks))


def collective_read(
    machine: Paragon,
    fs: PFS,
    path: str,
    nranks: int,
    total_bytes: int,
    block_bytes: int,
    strategy: str,
) -> CollectiveResult:
    """Load a block-cyclic file collectively; returns timing + op counts.

    The file must exist (``fs.ensure``) with at least ``total_bytes``.
    Runs the simulation to completion (call on an otherwise idle machine).
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"strategy must be one of {STRATEGIES}, got {strategy!r}")
    if total_bytes % block_bytes:
        raise ValueError("block_bytes must divide total_bytes")
    if nranks < 1 or nranks > machine.config.compute_nodes:
        raise ValueError(f"bad rank count {nranks}")
    n_blocks = total_bytes // block_bytes
    env = machine.env
    served_before = sum(ion.requests_served for ion in machine.ionodes)
    app_requests = 0
    start = env.now

    if strategy == "independent":
        def rank_main(rank):
            nonlocal app_requests
            fd = yield from fs.open(rank, path)
            for block in _blocks_of(rank, nranks, n_blocks):
                yield from fs.seek(rank, fd, block * block_bytes)
                got = yield from fs.read(rank, fd, block_bytes)
                assert got == block_bytes
                app_requests += 1
            yield from fs.close(rank, fd)

        procs = [env.process(rank_main(r)) for r in range(nranks)]

    elif strategy == "root-broadcast":
        def root():
            nonlocal app_requests
            fd = yield from fs.open(0, path)
            got = 0
            chunk = 4 * 1024 * 1024
            while got < total_bytes:
                got += yield from fs.read(0, fd, min(chunk, total_bytes - got))
                app_requests += 1
            yield from fs.close(0, fd)
            yield env.timeout(
                machine.mesh.broadcast_time(0, nranks, total_bytes)
            )

        procs = [env.process(root())]

    elif strategy == "two-phase":
        share = total_bytes // nranks

        def rank_main(rank):
            nonlocal app_requests
            fd = yield from fs.open(rank, path)
            yield from fs.seek(rank, fd, rank * share)
            got = yield from fs.read(rank, fd, share)
            assert got == share
            app_requests += 1
            yield from fs.close(rank, fd)
            # Phase two: all-to-all redistribution to block-cyclic
            # ownership; each rank exchanges (N-1)/N of its share.
            exchanged = share * (nranks - 1) // max(nranks, 1)
            p = machine.mesh.params
            yield env.timeout(
                (nranks - 1) * p.latency_s + exchanged / p.bandwidth_bps
            )

        procs = [env.process(rank_main(r)) for r in range(nranks)]

    else:  # disk-directed
        layout = fs.lookup(path).layout
        shares = layout.span_bytes(0, total_bytes)

        def ionode_stream(index, nbytes):
            # One continuous pass over the I/O node's resident portion.
            ion = machine.ionodes[index]
            base = layout.disk_address(0)
            yield env.process(
                ion.serve(base, nbytes, False, fs._chunk_extra(nbytes, False))
            )

        def client(rank):
            # Clients receive their share in parallel (mesh + copy).
            nbytes = total_bytes // nranks
            p = machine.mesh.params
            yield env.timeout(
                p.latency_s
                + nbytes / p.bandwidth_bps
                + nbytes * fs.costs.client_byte_cost_s
            )

        procs = [
            env.process(ionode_stream(i, nbytes))
            for i, nbytes in shares.items()
        ] + [env.process(client(r)) for r in range(nranks)]
        app_requests = nranks  # one collective call per rank

    machine.run()
    for p in procs:
        if p.is_alive:
            raise RuntimeError(f"collective read deadlocked ({strategy})")
        if not p.ok:
            raise p.value
    return CollectiveResult(
        strategy=strategy,
        wall_s=env.now - start,
        application_requests=app_requests,
        ionode_requests=sum(i.requests_served for i in machine.ionodes) - served_before,
        bytes_read=total_bytes,
    )
