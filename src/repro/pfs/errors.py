"""Errors raised by the PFS model.

These mirror the failure classes a real PFS client would see: bad
descriptors, mode-semantics violations, and record-size violations in
fixed-record modes.

The fault-injection subsystem (:mod:`repro.faults`) adds a second axis —
a transient/fatal split modelling I/O-path failures:

* :class:`TransientIOError` and its subclasses are *retryable*: the
  request may succeed if re-issued (the retry layer in
  :mod:`repro.pfs.retry` does exactly that).
* :class:`FatalIOError` and its subclasses are *terminal*: the data is
  gone (:class:`DataLoss`) or the retry budget is spent
  (:class:`RetryBudgetExceeded`), and the operation must surface the
  failure to the application.
"""

from __future__ import annotations

__all__ = [
    "PFSError",
    "BadFileDescriptor",
    "ModeError",
    "RecordSizeError",
    "FileExists",
    "FileNotFound",
    "TransientIOError",
    "IOTimeout",
    "IONodeUnavailable",
    "DegradedService",
    "FatalIOError",
    "RetryBudgetExceeded",
    "DataLoss",
]


class PFSError(RuntimeError):
    """Base class for all PFS failures."""


class BadFileDescriptor(PFSError):
    """Operation on a descriptor the node does not hold open."""


class ModeError(PFSError):
    """Operation violates the file's access-mode semantics."""


class RecordSizeError(ModeError):
    """Variable-size operation on a fixed-record (M_RECORD) file."""


class FileExists(PFSError):
    """Exclusive create of a path that already exists."""


class FileNotFound(PFSError):
    """Open without create of a path that does not exist."""


# -- transient (retryable) failures --------------------------------------------
class TransientIOError(PFSError):
    """A request failed in a way that a re-issue may cure."""


class IOTimeout(TransientIOError):
    """A request was dropped in flight and detected by timeout."""


class IONodeUnavailable(TransientIOError):
    """The serving I/O node is down (crashed, not yet restarted)."""


class DegradedService(TransientIOError):
    """Request rejected while the array controller reconfigures after a
    disk loss (the brief post-failure window before degraded service)."""


# -- fatal (terminal) failures -------------------------------------------------
class FatalIOError(PFSError):
    """A request failed irrecoverably; retrying cannot help."""


class RetryBudgetExceeded(FatalIOError):
    """A request kept failing transiently past the retry policy's budget."""


class DataLoss(FatalIOError):
    """Data is unrecoverable (e.g. a second disk lost in a RAID-3 array)."""
