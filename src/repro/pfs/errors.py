"""Errors raised by the PFS model.

These mirror the failure classes a real PFS client would see: bad
descriptors, mode-semantics violations, and record-size violations in
fixed-record modes.
"""

from __future__ import annotations

__all__ = [
    "PFSError",
    "BadFileDescriptor",
    "ModeError",
    "RecordSizeError",
    "FileExists",
    "FileNotFound",
]


class PFSError(RuntimeError):
    """Base class for all PFS failures."""


class BadFileDescriptor(PFSError):
    """Operation on a descriptor the node does not hold open."""


class ModeError(PFSError):
    """Operation violates the file's access-mode semantics."""


class RecordSizeError(ModeError):
    """Variable-size operation on a fixed-record (M_RECORD) file."""


class FileExists(PFSError):
    """Exclusive create of a path that already exists."""


class FileNotFound(PFSError):
    """Open without create of a path that does not exist."""
