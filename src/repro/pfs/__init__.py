"""Intel PFS parallel file system model.

Striped files over the machine's I/O nodes with the six PFS access modes,
a calibrated software cost model, and synchronous + asynchronous I/O
operations expressed as simulation processes.
"""

from .collective import STRATEGIES, CollectiveResult, collective_read
from .costs import CostModel
from .errors import (
    BadFileDescriptor,
    DataLoss,
    DegradedService,
    FatalIOError,
    FileExists,
    FileNotFound,
    IONodeUnavailable,
    IOTimeout,
    ModeError,
    PFSError,
    RecordSizeError,
    RetryBudgetExceeded,
    TransientIOError,
)
from .fanout import countdown
from .file import PFSFile
from .filesystem import SEEK_CUR, SEEK_END, SEEK_SET, AreadHandle, PFS
from .modes import AccessMode, ModeSemantics, semantics
from .retry import RetryPolicy, backoff_schedule, install_retry
from .striping import Chunk, StripeLayout

__all__ = [
    "STRATEGIES",
    "CollectiveResult",
    "collective_read",
    "CostModel",
    "BadFileDescriptor",
    "DataLoss",
    "DegradedService",
    "FatalIOError",
    "FileExists",
    "FileNotFound",
    "IONodeUnavailable",
    "IOTimeout",
    "ModeError",
    "PFSError",
    "RecordSizeError",
    "RetryBudgetExceeded",
    "TransientIOError",
    "RetryPolicy",
    "backoff_schedule",
    "install_retry",
    "countdown",
    "PFSFile",
    "SEEK_CUR",
    "SEEK_END",
    "SEEK_SET",
    "AreadHandle",
    "PFS",
    "AccessMode",
    "ModeSemantics",
    "semantics",
    "Chunk",
    "StripeLayout",
]
