"""File striping arithmetic.

PFS stripes files across the I/O nodes in 64 KB units (§3.2), round-robin
starting from a per-file first I/O node.  This module is pure math — the
filesystem uses it to decompose a logical extent into per-I/O-node chunks
and to map logical offsets to physical disk addresses.

All functions are deterministic; the decomposition/reassembly pair is a
bijection (property-tested), which is what guarantees the simulated data
path touches exactly the bytes the application asked for.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..util.units import STRIPE_UNIT
from ..util.validation import check_nonneg, check_positive

__all__ = ["StripeLayout", "Chunk"]


@dataclass(frozen=True)
class Chunk:
    """One per-I/O-node piece of a logical extent.

    Attributes
    ----------
    ionode:
        Index of the serving I/O node.
    disk_offset:
        Physical byte address on that I/O node's array.
    nbytes:
        Length of the piece.
    logical_offset:
        Where the piece starts in the file's logical byte space.
    """

    ionode: int
    disk_offset: int
    nbytes: int
    logical_offset: int


@dataclass(frozen=True)
class StripeLayout:
    """Striping map for one file.

    Parameters
    ----------
    n_ionodes:
        Number of I/O nodes in the stripe group.
    stripe_unit:
        Bytes per stripe unit (PFS default 64 KB).
    first_ionode:
        I/O node holding stripe 0 (files start on different nodes to
        spread load).
    base:
        Physical base address of this file's region on every I/O node
        (the simple allocator gives each file a contiguous region per
        node).
    """

    n_ionodes: int
    stripe_unit: int = STRIPE_UNIT
    first_ionode: int = 0
    base: int = 0

    def __post_init__(self) -> None:
        check_positive(self.n_ionodes, "n_ionodes")
        check_positive(self.stripe_unit, "stripe_unit")
        check_nonneg(self.base, "base")
        if not 0 <= self.first_ionode < self.n_ionodes:
            raise ValueError(
                f"first_ionode {self.first_ionode} outside 0..{self.n_ionodes - 1}"
            )
        # Decomposition memo: the layout is frozen, so the chunk list for
        # a given (offset, nbytes) never changes — and workloads re-issue
        # the same extents constantly (cyclic scans, synchronized writers,
        # interval flushes of the same runs).  Bounded so pathological
        # offset diversity cannot grow it without limit.
        object.__setattr__(self, "_memo", {})

    # -- point mapping ----------------------------------------------------
    def ionode_of(self, offset: int) -> int:
        """I/O node serving logical byte ``offset``."""
        check_nonneg(offset, "offset")
        stripe = offset // self.stripe_unit
        return (self.first_ionode + stripe) % self.n_ionodes

    def disk_address(self, offset: int) -> int:
        """Physical address of logical byte ``offset`` on its I/O node."""
        check_nonneg(offset, "offset")
        stripe = offset // self.stripe_unit
        local_stripe = stripe // self.n_ionodes
        return self.base + local_stripe * self.stripe_unit + offset % self.stripe_unit

    # -- extent decomposition ----------------------------------------------
    def decompose(self, offset: int, nbytes: int) -> list[Chunk]:
        """Split a logical extent into per-I/O-node chunks.

        Consecutive stripe units landing on the same I/O node (i.e. when
        the extent wraps the whole stripe group) are coalesced into one
        chunk per contiguous physical run, which is how the server-side
        request scheduler would issue them.
        """
        if offset < 0:  # inline check_nonneg: per-request hot path
            raise ValueError(f"offset must be >= 0, got {offset!r}")
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes!r}")
        if nbytes == 0:
            return []
        memo = self._memo
        cached = memo.get((offset, nbytes))
        if cached is not None:
            return cached.copy()
        pieces: list[Chunk] = []
        pos = offset
        remaining = nbytes
        while remaining > 0:
            in_stripe = self.stripe_unit - pos % self.stripe_unit
            take = min(remaining, in_stripe)
            pieces.append(
                Chunk(
                    ionode=self.ionode_of(pos),
                    disk_offset=self.disk_address(pos),
                    nbytes=take,
                    logical_offset=pos,
                )
            )
            pos += take
            remaining -= take
        out = _coalesce(pieces)
        if len(memo) >= 65536:
            memo.clear()
        memo[(offset, nbytes)] = out
        return out.copy()

    def span_bytes(self, offset: int, nbytes: int) -> dict[int, int]:
        """Bytes of the extent served by each I/O node (for load analyses)."""
        out: dict[int, int] = {}
        for chunk in self.decompose(offset, nbytes):
            out[chunk.ionode] = out.get(chunk.ionode, 0) + chunk.nbytes
        return out


def _coalesce(pieces: list[Chunk]) -> list[Chunk]:
    """Merge physically contiguous same-I/O-node pieces, preserving order."""
    merged: list[Chunk] = []
    # Index of the last piece per ionode, for O(n) adjacency checks.
    last_for_node: dict[int, int] = {}
    for piece in pieces:
        idx = last_for_node.get(piece.ionode)
        if idx is not None:
            prev = merged[idx]
            if prev.disk_offset + prev.nbytes == piece.disk_offset:
                merged[idx] = Chunk(
                    ionode=prev.ionode,
                    disk_offset=prev.disk_offset,
                    nbytes=prev.nbytes + piece.nbytes,
                    logical_offset=prev.logical_offset,
                )
                continue
        last_for_node[piece.ionode] = len(merged)
        merged.append(piece)
    return merged
