"""File striping arithmetic.

PFS stripes files across the I/O nodes in 64 KB units (§3.2), round-robin
starting from a per-file first I/O node.  This module is pure math — the
filesystem uses it to decompose a logical extent into per-I/O-node chunks
and to map logical offsets to physical disk addresses.

All functions are deterministic; the decomposition/reassembly pair is a
bijection (property-tested), which is what guarantees the simulated data
path touches exactly the bytes the application asked for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util.units import STRIPE_UNIT
from ..util.validation import check_nonneg, check_positive

__all__ = ["StripeLayout", "Chunk", "CHUNK_DTYPE"]

#: Columnar chunk record, one row per :class:`Chunk`, produced by
#: :meth:`StripeLayout.decompose_batch` for the vectorized service path.
CHUNK_DTYPE = np.dtype(
    [
        ("ionode", np.int64),
        ("disk_offset", np.int64),
        ("nbytes", np.int64),
        ("logical_offset", np.int64),
    ]
)


@dataclass(frozen=True)
class Chunk:
    """One per-I/O-node piece of a logical extent.

    Attributes
    ----------
    ionode:
        Index of the serving I/O node.
    disk_offset:
        Physical byte address on that I/O node's array.
    nbytes:
        Length of the piece.
    logical_offset:
        Where the piece starts in the file's logical byte space.
    """

    ionode: int
    disk_offset: int
    nbytes: int
    logical_offset: int


@dataclass(frozen=True)
class StripeLayout:
    """Striping map for one file.

    Parameters
    ----------
    n_ionodes:
        Number of I/O nodes in the stripe group.
    stripe_unit:
        Bytes per stripe unit (PFS default 64 KB).
    first_ionode:
        I/O node holding stripe 0 (files start on different nodes to
        spread load).
    base:
        Physical base address of this file's region on every I/O node
        (the simple allocator gives each file a contiguous region per
        node).
    """

    n_ionodes: int
    stripe_unit: int = STRIPE_UNIT
    first_ionode: int = 0
    base: int = 0

    def __post_init__(self) -> None:
        check_positive(self.n_ionodes, "n_ionodes")
        check_positive(self.stripe_unit, "stripe_unit")
        check_nonneg(self.base, "base")
        if not 0 <= self.first_ionode < self.n_ionodes:
            raise ValueError(
                f"first_ionode {self.first_ionode} outside 0..{self.n_ionodes - 1}"
            )
        # Decomposition memo: the layout is frozen, so the chunk list for
        # a given (offset, nbytes) never changes — and workloads re-issue
        # the same extents constantly (cyclic scans, synchronized writers,
        # interval flushes of the same runs).  Bounded so pathological
        # offset diversity cannot grow it without limit.
        object.__setattr__(self, "_memo", {})

    # -- point mapping ----------------------------------------------------
    def ionode_of(self, offset: int) -> int:
        """I/O node serving logical byte ``offset``."""
        check_nonneg(offset, "offset")
        stripe = offset // self.stripe_unit
        return (self.first_ionode + stripe) % self.n_ionodes

    def disk_address(self, offset: int) -> int:
        """Physical address of logical byte ``offset`` on its I/O node."""
        check_nonneg(offset, "offset")
        stripe = offset // self.stripe_unit
        local_stripe = stripe // self.n_ionodes
        return self.base + local_stripe * self.stripe_unit + offset % self.stripe_unit

    # -- extent decomposition ----------------------------------------------
    def decompose(self, offset: int, nbytes: int) -> list[Chunk]:
        """Split a logical extent into per-I/O-node chunks.

        Consecutive stripe units landing on the same I/O node (i.e. when
        the extent wraps the whole stripe group) are coalesced into one
        chunk per contiguous physical run, which is how the server-side
        request scheduler would issue them.

        Closed form, O(min(stripe units, I/O nodes)): within one extent
        every stripe unit except the last ends exactly at its unit
        boundary, so all of a node's units coalesce into a single
        physically contiguous chunk — there is never more than one chunk
        per node, and its geometry follows from the first unit alone
        (property-tested against the unit-walk reference).
        """
        if offset < 0:  # inline check_nonneg: per-request hot path
            raise ValueError(f"offset must be >= 0, got {offset!r}")
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes!r}")
        if nbytes == 0:
            return []
        memo = self._memo
        cached = memo.get((offset, nbytes))
        if cached is not None:
            return cached.copy()
        su = self.stripe_unit
        n = self.n_ionodes
        first = self.first_ionode
        base = self.base
        end = offset + nbytes
        u0 = offset // su
        u1 = (end - 1) // su
        span = u1 - u0 + 1
        out: list[Chunk] = []
        for j in range(span if span < n else n):
            u = u0 + j
            start = offset if j == 0 else u * su
            count = (u1 - u) // n + 1  # stripe units on this node
            last_u = u + (count - 1) * n
            stop = end if last_u == u1 else (last_u + 1) * su
            out.append(
                Chunk(
                    ionode=(first + u) % n,
                    disk_offset=base + (u // n) * su + start % su,
                    nbytes=count * su - (start - u * su) - ((last_u + 1) * su - stop),
                    logical_offset=start,
                )
            )
        if len(memo) >= 65536:
            memo.clear()
        memo[(offset, nbytes)] = out
        return out.copy()

    def decompose_batch(
        self, offsets, counts
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`decompose` over many extents in one pass.

        Returns ``(chunks_per_extent, chunks)``: an int64 array giving
        each extent's chunk count, and one :data:`CHUNK_DTYPE` structured
        array holding every chunk, extent-major in the exact order the
        scalar calls would produce.  Zero-length extents contribute zero
        chunks (the scalar path returns ``[]``).
        """
        offsets = np.asarray(offsets, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        if offsets.size and int(offsets.min()) < 0:
            raise ValueError("offsets must be >= 0")
        if counts.size and int(counts.min()) < 0:
            raise ValueError("counts must be >= 0")
        su = self.stripe_unit
        n = self.n_ionodes
        ends = offsets + counts
        u0 = offsets // su
        u1 = (ends - 1) // su
        m = np.where(counts > 0, np.minimum(u1 - u0 + 1, n), 0)
        total = int(m.sum())
        chunks = np.empty(total, CHUNK_DTYPE)
        if total == 0:
            return m, chunks
        req = np.repeat(np.arange(len(offsets)), m)
        j = np.arange(total) - np.repeat(np.cumsum(m) - m, m)
        u = u0[req] + j
        start = np.where(j == 0, offsets[req], u * su)
        count = (u1[req] - u) // n + 1
        last_u = u + (count - 1) * n
        stop = np.where(last_u == u1[req], ends[req], (last_u + 1) * su)
        chunks["ionode"] = (self.first_ionode + u) % n
        chunks["disk_offset"] = self.base + (u // n) * su + start % su
        chunks["nbytes"] = count * su - (start - u * su) - ((last_u + 1) * su - stop)
        chunks["logical_offset"] = start
        return m, chunks

    def span_bytes(self, offset: int, nbytes: int) -> dict[int, int]:
        """Bytes of the extent served by each I/O node (for load analyses)."""
        out: dict[int, int] = {}
        for chunk in self.decompose(offset, nbytes):
            out[chunk.ionode] = out.get(chunk.ionode, 0) + chunk.nbytes
        return out


def _coalesce(pieces: list[Chunk]) -> list[Chunk]:
    """Merge physically contiguous same-I/O-node pieces, preserving order."""
    merged: list[Chunk] = []
    # Index of the last piece per ionode, for O(n) adjacency checks.
    last_for_node: dict[int, int] = {}
    for piece in pieces:
        idx = last_for_node.get(piece.ionode)
        if idx is not None:
            prev = merged[idx]
            if prev.disk_offset + prev.nbytes == piece.disk_offset:
                merged[idx] = Chunk(
                    ionode=prev.ionode,
                    disk_offset=prev.disk_offset,
                    nbytes=prev.nbytes + piece.nbytes,
                    logical_offset=prev.logical_offset,
                )
                continue
        last_for_node[piece.ionode] = len(merged)
        merged.append(piece)
    return merged
