"""The six Intel PFS parallel file access modes (§3.2).

Each mode is a point in a small semantic space — pointer sharing, ordering
discipline, record-size discipline, and operation atomicity:

=========  ================  ===================  ============  =========
Mode       File pointer      Ordering             Request size  Atomic
=========  ================  ===================  ============  =========
M_UNIX     per node          none                 variable      yes
M_LOG      shared            first-come-first-    variable      yes
                             serve
M_SYNC     shared            node-number order    variable      yes
M_RECORD   per node          first-come-first-    fixed         yes
                             serve
M_GLOBAL   shared            all nodes issue the  variable      yes
                             same operation
M_ASYNC    per node          none                 variable      no
=========  ================  ===================  ============  =========

The table is encoded in :class:`ModeSemantics` so the filesystem enforces
each discipline uniformly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["AccessMode", "ModeSemantics", "semantics"]


class AccessMode(enum.Enum):
    """Intel PFS ``setiomode`` access modes."""

    M_UNIX = "M_UNIX"
    M_LOG = "M_LOG"
    M_SYNC = "M_SYNC"
    M_RECORD = "M_RECORD"
    M_GLOBAL = "M_GLOBAL"
    M_ASYNC = "M_ASYNC"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ModeSemantics:
    """Semantic axes of one access mode."""

    shared_pointer: bool
    node_order: bool  # accesses proceed in node-number order
    fcfs_order: bool  # accesses serialize first-come-first-serve
    fixed_records: bool  # every operation must be the declared record size
    collective: bool  # all nodes issue the same op on the same data
    atomic: bool  # operation atomicity preserved (shared-file writes lock)
    seekable: bool  # explicit seeks permitted


_SEMANTICS: dict[AccessMode, ModeSemantics] = {
    AccessMode.M_UNIX: ModeSemantics(
        shared_pointer=False, node_order=False, fcfs_order=False,
        fixed_records=False, collective=False, atomic=True, seekable=True,
    ),
    AccessMode.M_LOG: ModeSemantics(
        shared_pointer=True, node_order=False, fcfs_order=True,
        fixed_records=False, collective=False, atomic=True, seekable=False,
    ),
    AccessMode.M_SYNC: ModeSemantics(
        shared_pointer=True, node_order=True, fcfs_order=False,
        fixed_records=False, collective=False, atomic=True, seekable=False,
    ),
    AccessMode.M_RECORD: ModeSemantics(
        shared_pointer=False, node_order=False, fcfs_order=True,
        fixed_records=True, collective=False, atomic=True, seekable=True,
    ),
    AccessMode.M_GLOBAL: ModeSemantics(
        shared_pointer=True, node_order=False, fcfs_order=False,
        fixed_records=False, collective=True, atomic=True, seekable=False,
    ),
    AccessMode.M_ASYNC: ModeSemantics(
        shared_pointer=False, node_order=False, fcfs_order=False,
        fixed_records=False, collective=False, atomic=False, seekable=True,
    ),
}


def semantics(mode: AccessMode) -> ModeSemantics:
    """Semantics record for ``mode``."""
    return _SEMANTICS[mode]
