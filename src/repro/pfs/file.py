"""Per-file state for the PFS model.

A :class:`PFSFile` owns everything shared between the nodes that have a
file open: the stripe layout, the logical size, shared or per-node file
pointers, the coordination tokens that implement mode semantics, and an
optional byte-accurate content store (used by data-integrity tests; the
large application runs leave it disabled and track sizes only).
"""

from __future__ import annotations

from typing import Optional

from ..sim.core import Environment, Event
from ..sim.resources import Token
from .errors import ModeError, PFSError
from .modes import AccessMode, ModeSemantics, semantics
from .striping import StripeLayout

__all__ = ["PFSFile"]


class PFSFile:
    """Shared state of one open PFS file."""

    def __init__(
        self,
        env: Environment,
        path: str,
        file_id: int,
        layout: StripeLayout,
        mode: AccessMode = AccessMode.M_UNIX,
        record_size: Optional[int] = None,
        track_content: bool = False,
    ):
        self.env = env
        self.path = path
        self.file_id = file_id
        self.layout = layout
        self.mode = mode
        self.sem: ModeSemantics = semantics(mode)
        if self.sem.fixed_records and (record_size is None or record_size <= 0):
            raise ModeError(f"{mode} requires a positive record_size")
        self.record_size = record_size
        self.size = 0  # logical size: max extent ever written
        # Shared file pointer (per-descriptor pointers live in the open
        # entry — the "cursor" passed to tell/set_pointer/advance).
        self.shared_pointer = 0
        # Coordination state.
        self.write_token = Token(env)  # atomicity of shared-file writes
        self.order_token = Token(env)  # FCFS serialization (M_LOG/M_RECORD)
        self.openers: set[int] = set()  # nodes with the file open
        # Number of participating nodes for collective/ordered modes,
        # declared at open time (PFS fixes it at setiomode time).  When
        # not declared, it is snapshotted from the opener set at the
        # first ordered operation.
        self.declared_parties: Optional[int] = None
        self.sync_parties: Optional[int] = None
        self.record_parties: Optional[int] = None
        self._sync_turn = 0
        self._sync_waiters: dict[int, Event] = {}
        # M_GLOBAL collective op rendezvous.
        self._global_arrived = 0
        self._global_event: Optional[Event] = None
        self._global_done: Optional[Event] = None
        # Burst-tier routing: writes to marked files absorb into the
        # machine's burst-buffer log when one is present (checkpoint
        # traffic); plain files never consult the buffer.
        self.burst_tier = False
        # Optional content (bytearray grown on write).
        self.track_content = track_content
        self._content = bytearray() if track_content else None
        # Dirtiness per node (governs flush cost).
        self.dirty_nodes: set[int] = set()

    # -- pointer management -------------------------------------------------
    @property
    def shared(self) -> bool:
        """True while more than one node has the file open."""
        return len(self.openers) > 1

    def tell(self, cursor) -> int:
        """Current file-pointer position for a descriptor.

        ``cursor`` is any object with a ``pos`` attribute (the open-file
        entry); shared-pointer modes ignore it.
        """
        if self.sem.shared_pointer:
            return self.shared_pointer
        return cursor.pos

    def set_pointer(self, cursor, offset: int) -> None:
        """Position the pointer (shared or per-descriptor) at ``offset``."""
        if offset < 0:
            raise PFSError(f"negative file offset {offset}")
        if self.sem.shared_pointer:
            self.shared_pointer = offset
        else:
            cursor.pos = offset

    def advance(self, cursor, nbytes: int) -> None:
        """Move the pointer past a completed transfer."""
        self.set_pointer(cursor, self.tell(cursor) + nbytes)

    # -- record-size discipline ----------------------------------------------
    def check_record(self, nbytes: int) -> None:
        """Enforce fixed-record sizing when the mode requires it."""
        if self.sem.fixed_records and nbytes != self.record_size:
            from .errors import RecordSizeError

            raise RecordSizeError(
                f"{self.mode} file {self.path!r} requires {self.record_size}-byte "
                f"operations, got {nbytes}"
            )

    def record_slot(self, node: int, record_index: int, n_nodes: int) -> int:
        """Default M_RECORD write placement: node-interleaved groups.

        For N nodes, the file is groups of N records, each group in node
        order (§5.2) — the layout that made M_RECORD unattractive for
        ESCAT's reread-your-own-data pattern.
        """
        if self.record_size is None:
            raise ModeError("record_slot on a file without record_size")
        return (record_index * n_nodes + node) * self.record_size

    # -- M_SYNC node-order turns ---------------------------------------------
    def sync_wait(self, node: int, n_nodes: int) -> Event:
        """Event firing when it is ``node``'s turn in node-number order.

        Turns cycle 0..n_nodes-1; each node must take exactly its turn.
        """
        ev = Event(self.env)
        if node == self._sync_turn % n_nodes:
            ev.succeed()
        else:
            if node in self._sync_waiters:
                raise ModeError(f"node {node} already waiting for its M_SYNC turn")
            self._sync_waiters[node] = ev
        return ev

    def sync_done(self, n_nodes: int) -> None:
        """Advance the M_SYNC turn and release the next waiter."""
        self._sync_turn += 1
        nxt = self._sync_turn % n_nodes
        ev = self._sync_waiters.pop(nxt, None)
        if ev is not None:
            ev.succeed()

    # -- M_GLOBAL rendezvous ---------------------------------------------------
    def global_arrive(self, parties: int) -> tuple[Event, Event, bool]:
        """Arrive at the collective-op rendezvous.

        Returns ``(arrived, done, leader)``: ``arrived`` fires when all
        ``parties`` openers have issued the operation; ``leader`` is True
        for the arrival that should perform the single physical transfer
        and then succeed ``done`` (which the others wait on).
        """
        if self._global_event is None:
            self._global_event = Event(self.env)
            self._global_done = Event(self.env)
        arrived, done = self._global_event, self._global_done
        assert done is not None
        self._global_arrived += 1
        leader = self._global_arrived == 1
        if self._global_arrived >= parties:
            self._global_arrived = 0
            self._global_event = None
            self._global_done = None
            arrived.succeed()
        return arrived, done, leader

    # -- content ------------------------------------------------------------
    def write_content(self, offset: int, data: bytes) -> None:
        """Store bytes (content tracking must be enabled)."""
        if self._content is None:
            raise PFSError(f"content tracking disabled for {self.path!r}")
        end = offset + len(data)
        if end > len(self._content):
            self._content.extend(b"\x00" * (end - len(self._content)))
        self._content[offset:end] = data

    def read_content(self, offset: int, nbytes: int) -> bytes:
        """Fetch bytes (zero-filled past what was written, like sparse files)."""
        if self._content is None:
            raise PFSError(f"content tracking disabled for {self.path!r}")
        chunk = bytes(self._content[offset : offset + nbytes])
        if len(chunk) < nbytes and offset + nbytes <= self.size:
            chunk += b"\x00" * (nbytes - len(chunk))
        return chunk

    def note_write(self, node: int, offset: int, nbytes: int) -> None:
        """Update size and dirtiness for a completed write."""
        self.size = max(self.size, offset + nbytes)
        self.dirty_nodes.add(node)

    def readable_bytes(self, offset: int, nbytes: int) -> int:
        """Bytes actually available in [offset, offset+nbytes) (EOF clips)."""
        if offset >= self.size:
            return 0
        return min(nbytes, self.size - offset)
