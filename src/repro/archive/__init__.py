"""Multilevel storage: tape tertiary storage + hierarchical management.

The storage context §1 sets out ("hundreds of disks ... coupled with
tertiary storage devices, a multilevel storage management system, e.g.,
like Unitree"): a tape library model and an HSM facade that migrates
cold files off the disk level and transparently stages them back on
access.
"""

from .hsm import HSM, AgeBasedPolicy, HSMStats, MigrationPolicy, WatermarkPolicy
from .tape import TapeLibrary, TapeParams

__all__ = [
    "HSM",
    "AgeBasedPolicy",
    "HSMStats",
    "MigrationPolicy",
    "WatermarkPolicy",
    "TapeLibrary",
    "TapeParams",
]
