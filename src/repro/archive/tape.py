"""Tertiary storage: a tape library model.

§1 frames the design space as "hundreds of disks and disk arrays ...
coupled with tertiary storage devices [and] a multilevel storage
management system (e.g., like Unitree)".  This is the tertiary level: a
library of tape drives with the mid-90s characteristics that make
migration policy interesting — mounts cost tens of seconds, streaming is
slower than disk, and drives are scarce and contended.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.core import Environment
from ..sim.resources import Resource
from ..util.validation import check_nonneg, check_positive

__all__ = ["TapeParams", "TapeLibrary"]


@dataclass(frozen=True)
class TapeParams:
    """Library characteristics (DLT-class drives, robot-armed library)."""

    drives: int = 2
    #: Robot fetch + mount + load time per volume touch.
    mount_s: float = 45.0
    #: Locate/position time once mounted.
    locate_s: float = 10.0
    #: Streaming transfer rate.
    rate_bps: float = 1_500_000.0

    def __post_init__(self) -> None:
        check_positive(self.drives, "drives")
        check_nonneg(self.mount_s, "mount_s")
        check_nonneg(self.locate_s, "locate_s")
        check_positive(self.rate_bps, "rate_bps")


class TapeLibrary:
    """Contended tape drives with mount/locate/stream accounting."""

    def __init__(self, env: Environment, params: TapeParams | None = None):
        self.env = env
        self.params = params or TapeParams()
        self._drives = Resource(env, capacity=self.params.drives)
        self.bytes_written = 0
        self.bytes_read = 0
        self.mounts = 0
        self.busy_time = 0.0

    def transfer_time(self, nbytes: int) -> float:
        """Mount + locate + stream time for one volume touch."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        p = self.params
        return p.mount_s + p.locate_s + nbytes / p.rate_bps

    def write(self, nbytes: int):
        """Process generator: archive ``nbytes`` to tape."""
        yield from self._transfer(nbytes, is_write=True)

    def read(self, nbytes: int):
        """Process generator: recall ``nbytes`` from tape."""
        yield from self._transfer(nbytes, is_write=False)

    def _transfer(self, nbytes: int, is_write: bool):
        duration = self.transfer_time(nbytes)
        req = self._drives.request()
        yield req
        try:
            self.mounts += 1
            self.busy_time += duration
            yield self.env.timeout(duration)
            if is_write:
                self.bytes_written += nbytes
            else:
                self.bytes_read += nbytes
        finally:
            self._drives.release(req)
