"""Hierarchical storage management over PFS + tape.

A Unitree-style multilevel storage manager (§1): disk-resident files
migrate to tape when cold or when the disk high-water mark is crossed,
and accessing a migrated file transparently *stages it back in* — paying
the tape mount + stream penalty the file-archive studies in the paper's
related work (Jensen & Reed; Lawrie, Randall & Barton; Smith) measured.

:class:`HSM` is a facade over a file system: ``open`` intercepts
migrated files and stages them in before delegating; every other
operation passes straight through, so application skeletons run on an
HSM unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..pfs.errors import FileNotFound, PFSError
from ..pfs.filesystem import PFS
from .tape import TapeLibrary

__all__ = ["MigrationPolicy", "AgeBasedPolicy", "WatermarkPolicy", "HSM"]


@dataclass(frozen=True)
class MigrationPolicy:
    """Base policy: no migration (everything stays on disk)."""

    def victims(self, hsm: "HSM", now: float) -> list[str]:
        """Paths to migrate, ordered; subclasses implement."""
        return []


@dataclass(frozen=True)
class AgeBasedPolicy(MigrationPolicy):
    """Migrate files untouched for ``age_s`` seconds (oldest first).

    The Lawrie/Randall-style automatic file migration criterion.
    """

    age_s: float = 3600.0

    def victims(self, hsm: "HSM", now: float) -> list[str]:
        cold = [
            (last, path)
            for path, last in hsm.last_access.items()
            if now - last >= self.age_s and not hsm.is_migrated(path)
        ]
        return [path for _, path in sorted(cold)]


@dataclass(frozen=True)
class WatermarkPolicy(MigrationPolicy):
    """Keep disk residency under a high-water mark.

    When resident bytes exceed ``high_fraction * capacity``, migrate
    least-recently-accessed files until under ``low_fraction * capacity``.
    """

    capacity_bytes: int = 1 << 30
    high_fraction: float = 0.9
    low_fraction: float = 0.7

    def __post_init__(self) -> None:
        if not 0 < self.low_fraction < self.high_fraction <= 1.0:
            raise ValueError("need 0 < low < high <= 1")
        if self.capacity_bytes < 1:
            raise ValueError("capacity_bytes must be >= 1")

    def victims(self, hsm: "HSM", now: float) -> list[str]:
        resident = hsm.disk_resident_bytes()
        if resident <= self.high_fraction * self.capacity_bytes:
            return []
        target = self.low_fraction * self.capacity_bytes
        by_age = sorted(
            (last, path)
            for path, last in hsm.last_access.items()
            if not hsm.is_migrated(path)
        )
        out = []
        for _, path in by_age:
            if resident <= target:
                break
            f = hsm.fs.lookup(path)
            if f is None or f.openers:
                continue
            out.append(path)
            resident -= f.size
        return out


@dataclass
class HSMStats:
    """Migration/staging accounting."""

    migrations: int = 0
    stage_ins: int = 0
    bytes_migrated: int = 0
    bytes_staged_in: int = 0
    stage_in_wait_s: float = 0.0


class HSM:
    """Multilevel storage manager facade (see module docstring)."""

    def __init__(self, fs: PFS, tape: TapeLibrary, policy: Optional[MigrationPolicy] = None):
        self.fs = fs
        self.env = fs.env
        self.tape = tape
        self.policy = policy or MigrationPolicy()
        self._migrated: set[str] = set()
        # In-flight recalls: concurrent openers of the same migrated file
        # share one tape transfer instead of each mounting a volume.
        self._staging: dict[str, object] = {}
        self.last_access: dict[str, float] = {}
        self.stats = HSMStats()

    # -- state ------------------------------------------------------------------
    def is_migrated(self, path: str) -> bool:
        return path in self._migrated

    def disk_resident_bytes(self) -> int:
        """Bytes of file data currently on the disk level."""
        return sum(
            f.size
            for path, f in self.fs._files.items()
            if path not in self._migrated
        )

    def tape_resident_paths(self) -> list[str]:
        return sorted(self._migrated)

    # -- migration ----------------------------------------------------------------
    def migrate(self, path: str):
        """Process generator: move a file's data to tape.

        The file's metadata stays on disk (so later opens find it); a
        subsequent open pays the stage-in.  Open files cannot migrate.
        """
        f = self.fs.lookup(path)
        if f is None:
            raise FileNotFound(path)
        if f.openers:
            raise PFSError(f"cannot migrate {path!r}: file is open")
        if path in self._migrated:
            return
        yield from self.tape.write(f.size)
        self._migrated.add(path)
        self.stats.migrations += 1
        self.stats.bytes_migrated += f.size

    def stage_in(self, path: str):
        """Process generator: recall a migrated file to disk.

        Concurrent callers coalesce: the first performs the tape read;
        the rest wait for the same recall to complete.
        """
        from ..sim.core import Event

        f = self.fs.lookup(path)
        if f is None:
            raise FileNotFound(path)
        if path not in self._migrated:
            return
        pending = self._staging.get(path)
        if pending is not None:
            t0 = self.env.now
            yield pending
            self.stats.stage_in_wait_s += self.env.now - t0
            return
        done = Event(self.env)
        self._staging[path] = done
        t0 = self.env.now
        try:
            yield from self.tape.read(f.size)
        finally:
            del self._staging[path]
        self._migrated.discard(path)
        self.stats.stage_ins += 1
        self.stats.bytes_staged_in += f.size
        self.stats.stage_in_wait_s += self.env.now - t0
        done.succeed()

    def apply_policy(self):
        """Process generator: migrate everything the policy selects now."""
        for path in self.policy.victims(self, self.env.now):
            if not self.is_migrated(path):
                yield from self.migrate(path)

    # -- file-system facade ---------------------------------------------------------
    def open(self, node: int, path: str, *args, **kwargs):
        """Open with transparent stage-in of migrated files."""
        if path in self._migrated:
            yield from self.stage_in(path)
        fd = yield from self.fs.open(node, path, *args, **kwargs)
        self.last_access[path] = self.env.now
        return fd

    def ensure(self, path: str, **kwargs):
        f = self.fs.ensure(path, **kwargs)
        self.last_access.setdefault(path, self.env.now)
        return f

    def __getattr__(self, name):
        # Everything else (read/write/seek/close/...) passes through.
        return getattr(self.fs, name)
