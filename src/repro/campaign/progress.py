"""Structured progress reporting for long sweeps.

One fixed-format line per state change::

    [campaign demo] 12 runs: 5 queued 2 running 3 cached 2 done 0 failed | +escat/small/ppfs/adaptive done (1.3s)

The counts always cover the whole grid, so a line is meaningful on its
own in a log file; the trailing delta names the run that just moved.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

__all__ = ["Progress"]

_STATES = ("queued", "running", "cached", "done", "failed")


class Progress:
    """Tracks per-state run counts and emits one line per transition."""

    def __init__(
        self,
        name: str,
        total: int,
        stream: Optional[TextIO] = None,
        quiet: bool = False,
        clock=time.monotonic,
    ):
        self.name = name
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.quiet = quiet
        self._clock = clock
        self._t0 = clock()
        self.counts = {state: 0 for state in _STATES}
        self.counts["queued"] = total
        #: Wall-clock durations of completed (simulated, not cached) runs;
        #: feeds the throughput/ETA fields in :meth:`line`.
        self.durations: list[float] = []

    def move(self, src: str, dst: str, label: str = "", note: str = "") -> None:
        """Record one run moving ``src`` -> ``dst`` and emit a line."""
        for state in (src, dst):
            if state not in self.counts:
                raise ValueError(f"unknown progress state {state!r}")
        self.counts[src] -= 1
        self.counts[dst] += 1
        delta = f" | +{label} {dst}" if label else ""
        if note:
            delta += f" ({note})"
        self.emit(delta)

    def note_duration(self, seconds: float) -> None:
        """Record one simulated run's wall-clock duration."""
        self.durations.append(seconds)

    def _throughput(self, elapsed: float) -> str:
        """' N.NN runs/s eta Ms' once at least one run has finished."""
        finished = len(self.durations)
        if not finished or elapsed <= 0:
            return ""
        rate = finished / elapsed
        remaining = self.counts["queued"] + self.counts["running"]
        out = f" {rate:.2f} runs/s"
        if remaining:
            out += f" eta {remaining / rate:.0f}s"
        return out

    def line(self, suffix: str = "") -> str:
        counts = " ".join(f"{self.counts[s]} {s}" for s in _STATES)
        elapsed = self._clock() - self._t0
        return (
            f"[campaign {self.name}] {self.total} runs: {counts} "
            f"[{elapsed:.1f}s{self._throughput(elapsed)}]{suffix}"
        )

    def emit(self, suffix: str = "") -> None:
        if self.quiet:
            return
        print(self.line(suffix), file=self.stream, flush=True)

    @property
    def finished(self) -> bool:
        return (
            self.counts["cached"] + self.counts["done"] + self.counts["failed"]
            >= self.total
        )
