"""Parallel experiment-campaign engine with a content-addressed result cache.

Turns the single-run :class:`~repro.core.Experiment` harness into a
fleet runner: declare a parameter grid (:class:`CampaignSpec`), execute
it across worker processes (:class:`CampaignRunner`), and every finished
run lands in an on-disk cache keyed by the run's content hash
(:class:`ResultCache`) — so repeating a campaign re-simulates nothing
and extending it re-simulates only the new cells.

>>> from repro.campaign import CampaignSpec, CampaignRunner
>>> spec = CampaignSpec(apps=("escat", "render"), filesystems=("pfs", "ppfs"),
...                     policies=(None, "escat_tuned"))
>>> report = CampaignRunner(spec, cache_dir="cache/", jobs=4).run()  # doctest: +SKIP
>>> print(report.summary())  # doctest: +SKIP
"""

from .cache import ResultCache
from .metrics import CampaignManifest, RunRecord, render_summary, run_metrics
from .progress import Progress
from .runner import CampaignReport, CampaignRunner, execute_run
from .spec import CampaignSpec, RunSpec

__all__ = [
    "CampaignSpec",
    "RunSpec",
    "CampaignRunner",
    "CampaignReport",
    "ResultCache",
    "CampaignManifest",
    "RunRecord",
    "Progress",
    "run_metrics",
    "render_summary",
    "execute_run",
]
