"""Campaign executor: fan a run grid across worker processes.

The runner expands a :class:`CampaignSpec`, skips every run already in
the result cache, and executes the rest on a ``ProcessPoolExecutor``
(``jobs`` workers) with a per-run timeout and bounded retry.  Runs are
resubmitted in waves so a transient worker failure costs one attempt,
not the campaign.  If the pool cannot be created or breaks (restricted
environments, killed workers), execution falls back to in-process serial
mode and the campaign still completes.

The worker entry :func:`execute_run` is a module-level function taking
only primitives, so it pickles by reference into worker processes; each
worker simulates, reduces the result to metrics, publishes traces +
metrics into the shared cache, and returns only the small metric record.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Optional

from .cache import ResultCache
from .metrics import CampaignManifest, RunRecord, render_summary, run_metrics
from .progress import Progress
from .spec import CampaignSpec, RunSpec

__all__ = ["CampaignRunner", "CampaignReport", "execute_run"]


def code_version() -> str:
    """Installed distribution version, else the source tree's fallback."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        from .. import __version__

        return __version__


def execute_run(
    spec: RunSpec, cache_root: str, fail_marker: Optional[str] = None
) -> dict[str, Any]:
    """Worker entry: simulate ``spec``, publish to the cache, return metrics.

    ``fail_marker`` is a fault-injection hook for exercising the retry
    path: when the path does not exist yet, the worker creates it and
    raises, so exactly the first attempt of each marked run fails.
    """
    if fail_marker and not os.path.exists(fail_marker):
        with open(fail_marker, "w"):
            pass
        raise RuntimeError(f"injected worker failure for {spec.run_hash}")
    result = spec.build_experiment().run()
    metrics = run_metrics(result)
    ResultCache(cache_root).store(spec, result.traces, metrics)
    return metrics


class CampaignReport:
    """What one campaign invocation did, plus where the manifest landed."""

    def __init__(self, manifest: CampaignManifest, manifest_path: str):
        self.manifest = manifest
        self.manifest_path = manifest_path
        counts = manifest.counts()
        self.total = counts["total"]
        self.cached = counts["cached"]
        self.executed = counts["done"]
        self.failed = counts["failed"]

    @property
    def ok(self) -> bool:
        return self.failed == 0

    def summary(self) -> str:
        return render_summary(self.manifest)


class CampaignRunner:
    """Executes a campaign against a result cache.

    Parameters
    ----------
    campaign:
        The grid to run.
    cache_dir:
        Root of the content-addressed result cache.
    jobs:
        Worker processes; 1 means in-process serial execution.
    timeout_s:
        Per-run wall-clock budget (parallel mode); None disables.
    retries:
        Extra attempts after a failed/timed-out attempt.
    quiet:
        Suppress progress lines.
    fault_dir:
        Test hook: inject one failure per run via marker files here.
    """

    def __init__(
        self,
        campaign: CampaignSpec,
        cache_dir: str,
        jobs: int = 1,
        timeout_s: Optional[float] = None,
        retries: int = 1,
        quiet: bool = False,
        progress_stream=None,
        fault_dir: Optional[str] = None,
        worker: Callable[..., dict[str, Any]] = execute_run,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.campaign = campaign
        self.cache = ResultCache(cache_dir)
        self.jobs = jobs
        self.timeout_s = timeout_s
        self.retries = retries
        self.quiet = quiet
        self.progress_stream = progress_stream
        self.fault_dir = fault_dir
        self.worker = worker

    # -- public ------------------------------------------------------------
    def run(self) -> CampaignReport:
        runs = self.campaign.expand()
        records = {spec.run_hash: RunRecord(spec) for spec in runs}
        progress = Progress(
            self.campaign.name,
            len(runs),
            stream=self.progress_stream,
            quiet=self.quiet,
        )
        progress.emit(" | start")

        fresh = []
        for spec in runs:
            rec = records[spec.run_hash]
            if self.cache.has(spec.run_hash):
                rec.status = "cached"
                rec.metrics = self.cache.load_metrics(spec.run_hash)
                progress.move("queued", "cached", spec.label())
            else:
                fresh.append(spec)

        if fresh:
            if self.jobs > 1:
                survivors = self._run_parallel(fresh, records, progress)
            else:
                survivors = fresh
            if survivors:  # jobs == 1, or the pool never came up / broke
                self._run_serial(survivors, records, progress)

        manifest = CampaignManifest(
            name=self.campaign.name,
            version=code_version(),
            campaign_hash=self.campaign.campaign_hash,
            records=[records[spec.run_hash] for spec in runs],
        )
        path = manifest.write(self.cache.root)
        return CampaignReport(manifest, path)

    # -- helpers -----------------------------------------------------------
    def _marker(self, spec: RunSpec) -> Optional[str]:
        if not self.fault_dir:
            return None
        os.makedirs(self.fault_dir, exist_ok=True)
        return os.path.join(self.fault_dir, spec.run_hash)

    def _finish(self, rec: RunRecord, metrics: dict[str, Any], progress: Progress) -> None:
        rec.status = "done"
        rec.metrics = metrics
        progress.note_duration(rec.elapsed_s)
        progress.move("running", "done", rec.spec.label(), f"{rec.elapsed_s:.1f}s")

    def _fail_attempt(
        self, rec: RunRecord, error: str, progress: Progress
    ) -> bool:
        """Record one failed attempt; returns whether a retry is left."""
        rec.error = error
        if rec.attempts <= self.retries:
            rec.status = "queued"
            progress.move("running", "queued", rec.spec.label(), "retry")
            return True
        rec.status = "failed"
        progress.move("running", "failed", rec.spec.label(), error.splitlines()[0][:80])
        return False

    def _run_serial(
        self, specs: list[RunSpec], records: dict[str, RunRecord], progress: Progress
    ) -> None:
        """In-process execution (no per-run timeout enforcement)."""
        wave = list(specs)
        while wave:
            retry_wave = []
            for spec in wave:
                rec = records[spec.run_hash]
                rec.attempts += 1
                rec.status = "running"
                progress.move("queued", "running", spec.label())
                start = time.monotonic()
                try:
                    metrics = self.worker(spec, self.cache.root, self._marker(spec))
                except Exception:
                    rec.elapsed_s = time.monotonic() - start
                    if self._fail_attempt(rec, traceback.format_exc(limit=3), progress):
                        retry_wave.append(spec)
                else:
                    rec.elapsed_s = time.monotonic() - start
                    self._finish(rec, metrics, progress)
            wave = retry_wave

    def _run_parallel(
        self, specs: list[RunSpec], records: dict[str, RunRecord], progress: Progress
    ) -> list[RunSpec]:
        """Pool execution; returns runs the pool never got to (for serial
        fallback) — empty on a normal completion."""
        try:
            pool = ProcessPoolExecutor(max_workers=self.jobs)
        except (OSError, ValueError, ImportError):
            progress.emit(" | process pool unavailable, falling back to serial")
            return specs

        timed_out = False
        try:
            wave = list(specs)
            while wave:
                futures: list[tuple[RunSpec, Future]] = []
                for spec in wave:
                    rec = records[spec.run_hash]
                    rec.attempts += 1
                    rec.status = "running"
                    progress.move("queued", "running", spec.label())
                    futures.append(
                        (spec, pool.submit(self.worker, spec, self.cache.root, self._marker(spec)))
                    )
                retry_wave = []
                for spec, future in futures:
                    rec = records[spec.run_hash]
                    start = time.monotonic()
                    try:
                        metrics = future.result(timeout=self.timeout_s)
                    except FutureTimeout:
                        timed_out = True
                        rec.elapsed_s = time.monotonic() - start
                        future.cancel()
                        if self._fail_attempt(
                            rec, f"timed out after {self.timeout_s}s", progress
                        ):
                            retry_wave.append(spec)
                    except BrokenProcessPool:
                        # Pool is gone; everything not yet finished reruns
                        # serially (attempt already counted is kept).
                        progress.emit(" | worker pool broke, falling back to serial")
                        unfinished = []
                        for sp, _ in futures:
                            r = records[sp.run_hash]
                            if r.status == "running":
                                progress.move("running", "queued", sp.label(), "pool broke")
                                r.status = "queued"
                                unfinished.append(sp)
                        return unfinished + retry_wave
                    except Exception:
                        rec.elapsed_s = time.monotonic() - start
                        if self._fail_attempt(
                            rec, traceback.format_exc(limit=3), progress
                        ):
                            retry_wave.append(spec)
                    else:
                        rec.elapsed_s = time.monotonic() - start
                        self._finish(rec, metrics, progress)
                wave = retry_wave
            return []
        finally:
            # A timed-out worker may be wedged; don't block shutdown on it.
            pool.shutdown(wait=not timed_out, cancel_futures=True)
