"""Declarative campaign specifications and content-addressed run hashes.

A :class:`CampaignSpec` names a parameter grid — applications, scales,
file systems, PPFS policy presets, seeds, config overrides — and expands
it into concrete :class:`RunSpec` records.  Each run spec canonicalizes
to a stable JSON form whose SHA-256 digest is the run's *content hash*:
two specs with the same parameters hash identically regardless of how or
where they were built, which is what lets the result cache make repeat
campaigns incremental.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Iterable, Optional, Sequence

from ..apps.workloads import paper_machine, production_machine, small_machine
from ..core.experiment import Experiment
from ..core.registry import (
    APPLICATIONS,
    paper_experiment,
    production_experiment,
    small_experiment,
)
from ..faults.plan import FaultPlan
from ..ppfs.policies import PPFSPolicies

__all__ = ["RunSpec", "CampaignSpec", "SPEC_VERSION"]

#: Bumped whenever the canonical form changes meaning; part of the hash,
#: so stale cache entries from an older scheme are never reused.
SPEC_VERSION = 1

_SCALES = ("paper", "small", "production")
_FILESYSTEMS = ("pfs", "ppfs")
#: Override values must survive a JSON round trip unchanged.
_OVERRIDE_TYPES = (bool, int, float, str)


def _freeze_overrides(overrides: Any) -> tuple[tuple[str, Any], ...]:
    """Normalize a dict/pair-iterable of config overrides to a sorted tuple."""
    items = dict(overrides or {}).items()
    for key, value in items:
        if not isinstance(key, str) or not key:
            raise ValueError(f"override keys must be non-empty strings, got {key!r}")
        if not isinstance(value, _OVERRIDE_TYPES):
            raise ValueError(
                f"override {key}={value!r} is not a JSON scalar "
                f"({'/'.join(t.__name__ for t in _OVERRIDE_TYPES)})"
            )
    return tuple(sorted(items))


@dataclass(frozen=True)
class RunSpec:
    """One fully-determined simulation run.

    Every field is a primitive, so the record pickles cheaply across the
    worker-pool boundary and serializes losslessly into cache metadata.

    Parameters
    ----------
    app:
        'escat', 'render', 'htf', 'checkpoint' or 'trace'.
    scale:
        'paper' (the Tables 1-6 runs), 'small' (structure-preserving
        miniatures) or 'production' (the 2048-node partition).
    fs:
        'pfs' or 'ppfs'.
    policy:
        PPFS policy preset name (see :meth:`PPFSPolicies.presets`), or
        None for the preset-free default.  Requires ``fs='ppfs'``.
    seed:
        Machine RNG seed; None keeps each scale's calibrated default.
    overrides:
        Workload-config field overrides, applied with
        :func:`dataclasses.replace` on the app's config record.
    faults:
        Optional fault plan — a :class:`repro.faults.FaultPlan` or its
        JSON text; stored as canonical JSON so the record stays a
        picklable primitive.  An empty plan normalizes to None (it
        produces the identical trace, so it must hash identically).
    telemetry:
        Optional sampling cadence in simulated seconds.  A falsy value
        (None/0/False) normalizes to None — telemetry never perturbs the
        trace, so a telemetry-free spec must keep its pre-telemetry hash.
    burst_buffer:
        Optional burst-buffer log capacity in bytes (``True`` selects the
        default capacity).  A falsy value normalizes to None — no tier
        attached, so a buffer-free spec must keep its pre-buffer hash.
    fidelity:
        Execution fidelity: ``'fluid'`` for closed-form phase service,
        or None / ``'event'`` for discrete events.  ``'event'`` (and any
        falsy value) normalizes to None — event fidelity is the default
        and byte-identical, so an event spec must keep its pre-fidelity
        hash.
    spans:
        ``True`` records causal span trees for the run.  A falsy value
        normalizes to None — recording never perturbs the trace, so a
        spans-free spec must keep its pre-spans hash.
    trace:
        Path to the ingested trace file (``app='trace'`` only, and
        required there).  The run hash covers the file's *content*
        digest, not the path — the same records cached under two
        filenames dedupe, and editing the file invalidates the cache.
    """

    app: str
    scale: str = "small"
    fs: str = "pfs"
    policy: Optional[str] = None
    seed: Optional[int] = None
    overrides: tuple[tuple[str, Any], ...] = ()
    faults: Optional[Any] = None
    telemetry: Optional[float] = None
    burst_buffer: Optional[int] = None
    fidelity: Optional[str] = None
    spans: Optional[bool] = None
    trace: Optional[str] = None

    def __post_init__(self) -> None:
        if self.app not in APPLICATIONS:
            raise ValueError(f"unknown app {self.app!r}; pick from {sorted(APPLICATIONS)}")
        if self.scale not in _SCALES:
            raise ValueError(f"scale must be one of {_SCALES}, got {self.scale!r}")
        if self.fs not in _FILESYSTEMS:
            raise ValueError(f"fs must be one of {_FILESYSTEMS}, got {self.fs!r}")
        if self.policy is not None:
            if self.fs != "ppfs":
                raise ValueError(f"policy {self.policy!r} requires fs='ppfs'")
            if self.policy not in PPFSPolicies.presets():
                raise ValueError(
                    f"unknown policy preset {self.policy!r}; "
                    f"pick from {list(PPFSPolicies.presets())}"
                )
        if self.seed is not None and not isinstance(self.seed, int):
            raise ValueError(f"seed must be an int or None, got {self.seed!r}")
        object.__setattr__(self, "overrides", _freeze_overrides(self.overrides))
        if self.faults is not None:
            plan = (
                FaultPlan.from_json(self.faults)
                if isinstance(self.faults, str)
                else self.faults
            )
            if not isinstance(plan, FaultPlan):
                raise ValueError(
                    f"faults must be a FaultPlan or its JSON, got {type(plan).__name__}"
                )
            object.__setattr__(
                self, "faults", None if plan.empty else plan.canonical_json()
            )
        if self.telemetry is not None:
            if not isinstance(self.telemetry, (bool, int, float)):
                raise ValueError(
                    f"telemetry must be a cadence in seconds or None, "
                    f"got {self.telemetry!r}"
                )
            cadence = float(self.telemetry)
            if cadence < 0:
                raise ValueError(f"telemetry cadence must be >= 0, got {cadence}")
            # Falsy -> None: same hash-preserving trick as the faults axis.
            object.__setattr__(self, "telemetry", cadence or None)
        if self.burst_buffer is not None:
            spec = self.burst_buffer
            if spec is True:
                from ..machine.burstbuffer import BurstBufferParams

                spec = BurstBufferParams().capacity_bytes
            if not isinstance(spec, int) or isinstance(spec, bool) or spec < 0:
                raise ValueError(
                    f"burst_buffer must be a capacity in bytes or None, "
                    f"got {self.burst_buffer!r}"
                )
            # Falsy -> None: zero capacity means no tier at all.
            object.__setattr__(self, "burst_buffer", spec or None)
        if self.fidelity is not None:
            if self.fidelity not in ("event", "fluid"):
                raise ValueError(
                    f"fidelity must be 'event', 'fluid' or None, "
                    f"got {self.fidelity!r}"
                )
            # 'event' -> None: the default fidelity must hash identically
            # to a spec that never mentions the axis.
            object.__setattr__(
                self, "fidelity", self.fidelity if self.fidelity == "fluid" else None
            )
        if self.spans is not None:
            # Falsy -> None: a spans-off spec must hash like one that
            # never mentions the axis (recording is read-only).
            object.__setattr__(self, "spans", True if self.spans else None)
        if (self.app == "trace") != (self.trace is not None):
            raise ValueError(
                "app='trace' requires a trace file path (and only "
                f"app='trace' takes one); got app={self.app!r}, "
                f"trace={self.trace!r}"
            )
        if self.trace is not None:
            if not isinstance(self.trace, str) or not self.trace:
                raise ValueError(f"trace must be a file path, got {self.trace!r}")
            try:
                with open(self.trace, "rb") as fh:
                    digest = hashlib.sha256(fh.read()).hexdigest()[:16]
            except OSError as exc:
                raise ValueError(f"cannot read trace {self.trace!r}: {exc}") from None
            # Cached on the instance (not a field): the run hash must
            # follow the file's content, not its name.
            object.__setattr__(self, "_trace_digest", digest)

    # -- identity ----------------------------------------------------------
    def canonical(self) -> dict[str, Any]:
        """The hash-defining parameter record (JSON-stable key order)."""
        record = {
            "version": SPEC_VERSION,
            "app": self.app,
            "scale": self.scale,
            "fs": self.fs,
            "policy": self.policy,
            "seed": self.seed,
            "overrides": {k: v for k, v in self.overrides},
        }
        # Only present when set: pre-faults cache entries keep their hashes.
        if self.faults is not None:
            record["faults"] = self.faults
        # Likewise only when set (pre-telemetry entries keep their hashes).
        if self.telemetry is not None:
            record["telemetry"] = self.telemetry
        # Likewise (pre-burst-buffer entries keep their hashes).
        if self.burst_buffer is not None:
            record["burst_buffer"] = self.burst_buffer
        # Likewise (pre-fidelity entries keep their hashes).
        if self.fidelity is not None:
            record["fidelity"] = self.fidelity
        # Likewise (pre-spans entries keep their hashes).
        if self.spans is not None:
            record["spans"] = self.spans
        # Likewise; the digest (not the path) is what identifies the run.
        if self.trace is not None:
            record["trace"] = self._trace_digest
        return record

    @property
    def run_hash(self) -> str:
        """Content hash of the canonicalized parameters (hex, 16 chars)."""
        blob = json.dumps(self.canonical(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def label(self) -> str:
        """Short human identifier for progress lines and tables."""
        parts = [self.app, self.scale, self.fs]
        if self.policy:
            parts.append(self.policy)
        if self.seed is not None:
            parts.append(f"seed{self.seed}")
        if self.faults is not None:
            parts.append(f"faults{hashlib.sha256(self.faults.encode()).hexdigest()[:6]}")
        if self.telemetry is not None:
            parts.append(f"telem{self.telemetry:g}")
        if self.burst_buffer is not None:
            parts.append(f"bb{self.burst_buffer // (1024 * 1024)}M")
        if self.fidelity is not None:
            parts.append(self.fidelity)
        if self.spans is not None:
            parts.append("spans")
        if self.trace is not None:
            parts.append(f"trace{self._trace_digest[:6]}")
        return "/".join(parts)

    # -- (de)serialization -------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        record = self.canonical()
        if self.trace is not None:
            # The digest identifies the run; the path rebuilds it.
            record["trace_path"] = self.trace
        return record

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunSpec":
        return cls(
            app=data["app"],
            scale=data.get("scale", "small"),
            fs=data.get("fs", "pfs"),
            policy=data.get("policy"),
            seed=data.get("seed"),
            overrides=tuple(sorted((data.get("overrides") or {}).items())),
            faults=data.get("faults"),
            telemetry=data.get("telemetry"),
            burst_buffer=data.get("burst_buffer"),
            fidelity=data.get("fidelity"),
            spans=data.get("spans"),
            trace=data.get("trace_path"),
        )

    # -- materialization ---------------------------------------------------
    def build_experiment(self) -> Experiment:
        """Assemble the :class:`Experiment` this spec describes."""
        builders = {
            "paper": (paper_experiment, 0, paper_machine),
            "small": (small_experiment, 1, small_machine),
            "production": (production_experiment, 2, production_machine),
        }
        build, config_index, machine = builders[self.scale]
        kwargs: dict[str, Any] = {}
        if self.trace is not None:
            # The trace app's presets are scale-free placeholders; the
            # config that matters is the input path (+ any overrides,
            # e.g. think_time).
            base = APPLICATIONS[self.app][config_index]()
            kwargs["config"] = dataclasses.replace(
                base, source=self.trace, **dict(self.overrides)
            )
        elif self.overrides:
            base = APPLICATIONS[self.app][config_index]()
            kwargs["config"] = dataclasses.replace(base, **dict(self.overrides))
        if self.seed is not None:
            kwargs["machine_factory"] = partial(machine, seed=self.seed)
        if self.fs == "ppfs":
            kwargs["filesystem"] = "ppfs"
            kwargs["policies"] = (
                PPFSPolicies.from_name(self.policy) if self.policy else PPFSPolicies()
            )
        if self.faults is not None:
            kwargs["faults"] = FaultPlan.from_json(self.faults)
        if self.telemetry is not None:
            kwargs["telemetry"] = self.telemetry
        if self.burst_buffer is not None:
            kwargs["burst_buffer"] = self.burst_buffer
        if self.fidelity is not None:
            kwargs["fidelity"] = self.fidelity
        if self.spans is not None:
            kwargs["spans"] = self.spans
        return build(self.app, **kwargs)


@dataclass
class CampaignSpec:
    """A parameter grid over :class:`RunSpec` fields.

    ``expand()`` takes the cartesian product and drops the combinations
    that cannot exist (a PPFS policy preset on plain PFS), so a grid of
    ``filesystems=('pfs', 'ppfs')`` and several presets yields one PFS
    baseline plus every PPFS variant — deduplicated by content hash.
    """

    apps: Sequence[str] = ("escat", "render", "htf")
    scales: Sequence[str] = ("small",)
    filesystems: Sequence[str] = ("pfs",)
    policies: Sequence[Optional[str]] = (None,)
    seeds: Sequence[Optional[int]] = (None,)
    overrides: dict[str, Any] = field(default_factory=dict)
    #: Fault-plan axis: None (fault-free) and/or FaultPlan instances /
    #: JSON strings — a fault-free baseline plus each faulted twin.
    fault_plans: Sequence[Optional[Any]] = (None,)
    #: Telemetry axis: None (off) and/or sampling cadences in simulated
    #: seconds; enabled runs carry their metric summary in the manifest.
    telemetry: Sequence[Optional[float]] = (None,)
    #: Burst-buffer axis: None (no tier) and/or log capacities in bytes —
    #: combined with interval/size overrides this sweeps the checkpoint
    #: interval x state size x buffer capacity grid.
    burst_buffers: Sequence[Optional[int]] = (None,)
    #: Fidelity axis: None/'event' (discrete, byte-identical) and/or
    #: 'fluid' (closed-form phase service) — an event baseline plus its
    #: approximate-but-fast twin.
    fidelities: Sequence[Optional[str]] = (None,)
    #: Spans axis: None (off) and/or True — enabled runs record causal
    #: span trees (read-only: traces and hashes are unchanged).
    spans: Sequence[Optional[bool]] = (None,)
    #: Ingested-trace axis (``apps`` containing 'trace' only): paths to
    #: JSONL/CSV/SDDF trace files, each replayed under every other axis
    #: combination.  None pairs with the built-in apps.
    traces: Sequence[Optional[str]] = (None,)
    name: str = "campaign"

    def expand(self) -> list[RunSpec]:
        """The grid's concrete runs, in deterministic order, deduplicated."""
        frozen = _freeze_overrides(self.overrides)
        runs: dict[str, RunSpec] = {}
        for app, scale, fs, policy, seed, faults, telem, bb, fid, spn, trc in itertools.product(
            self.apps, self.scales, self.filesystems, self.policies, self.seeds,
            self.fault_plans, self.telemetry, self.burst_buffers, self.fidelities,
            self.spans, self.traces,
        ):
            if fs == "pfs" and policy is not None:
                continue
            # Trace files pair only with the trace app (and vice versa).
            if (app == "trace") != (trc is not None):
                continue
            spec = RunSpec(
                app=app, scale=scale, fs=fs, policy=policy, seed=seed,
                overrides=frozen, faults=faults, telemetry=telem,
                burst_buffer=bb, fidelity=fid, spans=spn, trace=trc,
            )
            runs.setdefault(spec.run_hash, spec)
        if not runs:
            raise ValueError("campaign grid expanded to zero runs")
        return list(runs.values())

    @property
    def campaign_hash(self) -> str:
        """Hash over the sorted run hashes (identifies the whole grid)."""
        digest = hashlib.sha256()
        for h in sorted(r.run_hash for r in self.expand()):
            digest.update(h.encode())
        return digest.hexdigest()[:16]


def specs_from_dicts(rows: Iterable[dict[str, Any]]) -> list[RunSpec]:
    """Rehydrate run specs from manifest/cache JSON rows."""
    return [RunSpec.from_dict(row) for row in rows]
