"""Per-run metric extraction and campaign-level aggregation.

Workers reduce each finished :class:`ExperimentResult` to a small JSON
record (via the existing ``analysis`` layer) so the campaign driver never
ships traces between processes — only metrics travel; traces land in the
cache.  The driver folds the records into a ``manifest.json`` plus a
rendered summary table.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Optional

from ..analysis.operations import OperationTable
from ..pablo.events import Op
from ..util.io import atomic_write_json
from ..util.validation import sanitize_filename
from .spec import RunSpec

__all__ = [
    "run_metrics",
    "accumulate_metrics",
    "RunRecord",
    "CampaignManifest",
    "render_summary",
]


def accumulate_metrics(total: dict[str, Any], rec: dict[str, Any]) -> None:
    """Fold one per-trace record into the running totals, in place.

    Only keys the totals already track are summed (per-trace extras like
    ``duration_s`` are skipped); float totals re-round to 9 decimals
    after every add so the result is independent of fold order noise.
    """
    for key, base in total.items():
        value = rec.get(key)
        if value is None:
            continue
        if isinstance(base, float):
            total[key] = round(base + value, 9)
        else:
            total[key] += value


def run_metrics(result: Any) -> dict[str, Any]:
    """Reduce one :class:`ExperimentResult` to a JSON-safe metric record.

    Covers the quantities every downstream sweep compares: makespan (sim
    clock at completion), summed I/O node time, op counts and data
    volumes, per program and in total.
    """
    per_trace: dict[str, Any] = {}
    total = {
        "events": 0,
        "io_node_time_s": 0.0,
        "read_bytes": 0,
        "write_bytes": 0,
        "reads": 0,
        "writes": 0,
        "seeks": 0,
        "opens": 0,
        "faults": 0,
        "retries": 0,
        "degraded_s": 0.0,
    }
    makespan = 0.0
    for name, trace in result.traces.items():
        table = OperationTable(trace)
        ev = trace.events
        op = ev["op"]
        rec = {
            "events": len(trace),
            "duration_s": round(trace.duration, 9),
            "io_node_time_s": round(table.total_time, 9),
            "reads": table.row("Read").count + table.row("AsynchRead").count,
            "read_bytes": table.row("Read").volume + table.row("AsynchRead").volume,
            "writes": table.row("Write").count,
            "write_bytes": table.row("Write").volume,
            "seeks": table.row("Seek").count,
            "opens": table.row("Open").count,
            # Resilience rows (repro.faults); all zero on fault-free runs.
            "faults": int((op == int(Op.FAULT)).sum()),
            "retries": int((op == int(Op.RETRY)).sum()),
            "degraded_s": round(
                float(ev["duration"][op == int(Op.DEGRADED)].sum()), 9
            ),
        }
        per_trace[name] = rec
        accumulate_metrics(total, rec)
        makespan = max(makespan, trace.duration)
    sim_now = getattr(getattr(result.machine, "env", None), "now", None)
    out = {
        "makespan_s": round(float(sim_now) if sim_now is not None else makespan, 9),
        "traces": per_trace,
        **total,
    }
    fs = getattr(result, "fs", None)
    if hasattr(fs, "cache_stats"):
        out["cache"] = {
            "client": fs.cache_stats().as_dict(),
            "server": fs.server_cache_stats().as_dict(),
        }
    telemetry = getattr(result, "telemetry", None)
    if telemetry is not None:
        out["telemetry"] = telemetry.summary()
    spans = getattr(result, "spans", None)
    if spans is not None:
        out["spans"] = spans.store.summary()
    # Checkpoint runs carry their per-epoch cost record; burst-buffered
    # runs the log's occupancy/stall/drain counters.  Both keys appear
    # only when the feature ran, so pre-existing records are unchanged.
    app_stats = getattr(getattr(result, "app", None), "stats", None)
    if hasattr(app_stats, "as_dict") and hasattr(app_stats, "checkpoints_taken"):
        out["checkpoint"] = app_stats.as_dict()
    bb = getattr(result.machine, "burstbuffer", None)
    if bb is not None:
        out["burst_buffer"] = bb.stats_dict()
    return out


@dataclass
class RunRecord:
    """One run's outcome inside a campaign."""

    spec: RunSpec
    status: str = "queued"  # queued|running|cached|done|failed
    attempts: int = 0
    metrics: Optional[dict[str, Any]] = None
    error: str = ""
    elapsed_s: float = 0.0

    @property
    def run_hash(self) -> str:
        return self.spec.run_hash

    def to_dict(self) -> dict[str, Any]:
        return {
            "hash": self.run_hash,
            "spec": self.spec.to_dict(),
            "status": self.status,
            "attempts": self.attempts,
            "elapsed_s": round(self.elapsed_s, 3),
            "error": self.error,
            "metrics": self.metrics,
        }


@dataclass
class CampaignManifest:
    """Aggregate record of one campaign invocation."""

    name: str
    version: str
    campaign_hash: str
    records: list[RunRecord] = field(default_factory=list)

    def counts(self) -> dict[str, int]:
        out = {"total": len(self.records), "cached": 0, "done": 0, "failed": 0}
        for rec in self.records:
            if rec.status in out:
                out[rec.status] += 1
        return out

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "version": self.version,
            "campaign_hash": self.campaign_hash,
            "counts": self.counts(),
            "runs": [rec.to_dict() for rec in self.records],
        }

    def write(self, directory: str) -> str:
        """Write ``<sanitized name>.manifest.json`` under ``directory``."""
        path = os.path.join(
            directory, f"{sanitize_filename(self.name, 'campaign')}.manifest.json"
        )
        atomic_write_json(path, self.to_dict())
        return path


def render_summary(manifest: CampaignManifest) -> str:
    """Fixed-width per-run table plus the campaign's headline counts."""
    header = (
        f"{'run':<30} {'hash':<16} {'status':<7} {'tries':>5} "
        f"{'makespan(s)':>12} {'io time(s)':>12} {'events':>8}"
    )
    lines = [
        f"campaign {manifest.name!r}  (grid {manifest.campaign_hash}, "
        f"code v{manifest.version})",
        header,
        "-" * len(header),
    ]
    for rec in manifest.records:
        m = rec.metrics or {}
        mk = f"{m['makespan_s']:.2f}" if "makespan_s" in m else "-"
        io = f"{m['io_node_time_s']:.2f}" if "io_node_time_s" in m else "-"
        ev = f"{m['events']:,}" if "events" in m else "-"
        lines.append(
            f"{rec.spec.label():<30} {rec.run_hash:<16} {rec.status:<7} "
            f"{rec.attempts:>5} {mk:>12} {io:>12} {ev:>8}"
        )
    c = manifest.counts()
    lines.append("-" * len(header))
    lines.append(
        f"{c['total']} runs: {c['cached']} cached, {c['done']} simulated, "
        f"{c['failed']} failed"
    )
    return "\n".join(lines)
