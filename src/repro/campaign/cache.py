"""Content-addressed on-disk result cache.

Each completed run is stored under ``<root>/<run_hash>/`` holding the
run's SDDF traces, its ``spec.json`` and its ``metrics.json``.  Entries
are built in a staging directory and published with an atomic rename, so
a cache can be shared by concurrent workers and a killed campaign never
leaves a half-written entry that later looks like a hit.
"""

from __future__ import annotations

import json
import os
import shutil
from typing import Any, Optional

from ..pablo.trace import Trace
from ..util.validation import sanitize_filename
from .spec import RunSpec

__all__ = ["ResultCache"]

_METRICS = "metrics.json"
_SPEC = "spec.json"
_STAGING = ".staging"


class ResultCache:
    """Run results keyed by content hash."""

    def __init__(self, root: str):
        self.root = os.path.abspath(root)

    # -- paths -------------------------------------------------------------
    def entry_dir(self, run_hash: str) -> str:
        return os.path.join(self.root, run_hash)

    def trace_path(self, run_hash: str, name: str) -> str:
        return os.path.join(self.entry_dir(run_hash), f"{sanitize_filename(name)}.sddf")

    # -- queries -----------------------------------------------------------
    def has(self, run_hash: str) -> bool:
        """True iff a complete entry exists (metrics.json is written last)."""
        return os.path.isfile(os.path.join(self.entry_dir(run_hash), _METRICS))

    def load_metrics(self, run_hash: str) -> dict[str, Any]:
        with open(os.path.join(self.entry_dir(run_hash), _METRICS)) as fh:
            return json.load(fh)

    def load_spec(self, run_hash: str) -> Optional[RunSpec]:
        path = os.path.join(self.entry_dir(run_hash), _SPEC)
        if not os.path.isfile(path):
            return None
        with open(path) as fh:
            return RunSpec.from_dict(json.load(fh))

    def load_trace(self, run_hash: str, name: str) -> Trace:
        return Trace.load(self.trace_path(run_hash, name))

    def entries(self) -> list[str]:
        """Hashes of all complete entries, sorted."""
        if not os.path.isdir(self.root):
            return []
        return sorted(h for h in os.listdir(self.root) if self.has(h))

    # -- mutation ----------------------------------------------------------
    def store(
        self, spec: RunSpec, traces: dict[str, Trace], metrics: dict[str, Any]
    ) -> str:
        """Publish one run's results; returns the entry directory.

        Safe against concurrent writers of the same hash: the loser's
        staging directory is discarded and the existing entry kept.
        """
        final = self.entry_dir(spec.run_hash)
        staging = os.path.join(self.root, _STAGING, f"{spec.run_hash}.{os.getpid()}")
        os.makedirs(staging, exist_ok=True)
        try:
            for name, trace in traces.items():
                trace.save(os.path.join(staging, f"{sanitize_filename(name)}.sddf"))
            with open(os.path.join(staging, _SPEC), "w") as fh:
                json.dump(spec.to_dict(), fh, indent=2, sort_keys=True)
            # metrics.json last: its presence marks the entry complete.
            with open(os.path.join(staging, _METRICS), "w") as fh:
                json.dump(metrics, fh, indent=2, sort_keys=True)
            try:
                os.replace(staging, final)
            except OSError:
                if not self.has(spec.run_hash):
                    raise
        finally:
            shutil.rmtree(staging, ignore_errors=True)
        return final

    def evict(self, run_hash: str) -> bool:
        """Remove one entry; returns whether anything was deleted."""
        path = self.entry_dir(run_hash)
        if not os.path.isdir(path):
            return False
        shutil.rmtree(path)
        return True

    def clean(self) -> int:
        """Remove every entry, manifest and staging debris; returns the
        number of entries removed."""
        removed = 0
        for run_hash in self.entries():
            removed += self.evict(run_hash)
        shutil.rmtree(os.path.join(self.root, _STAGING), ignore_errors=True)
        if os.path.isdir(self.root):
            for fn in os.listdir(self.root):
                if fn.endswith(".manifest.json"):
                    os.remove(os.path.join(self.root, fn))
            if not os.listdir(self.root):
                os.rmdir(self.root)
        return removed

    def size_bytes(self) -> int:
        """Total bytes stored under complete entries."""
        total = 0
        for run_hash in self.entries():
            entry = self.entry_dir(run_hash)
            for fn in os.listdir(entry):
                total += os.path.getsize(os.path.join(entry, fn))
        return total
