"""Deterministic discrete-event simulation kernel.

The substrate everything else runs on: a generator-coroutine event loop
(:mod:`repro.sim.core`), shared-resource primitives
(:mod:`repro.sim.resources`), and named random streams
(:mod:`repro.sim.rng`).
"""

from .core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .resources import Barrier, PriorityResource, Resource, Store, Token
from .rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "Barrier",
    "PriorityResource",
    "Resource",
    "Store",
    "Token",
    "RngRegistry",
]
