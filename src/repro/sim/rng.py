"""Named deterministic random-number streams.

Every stochastic component in the simulator draws from its own named
stream so that (a) a seeded experiment is bit-reproducible and (b) adding
randomness to one component never perturbs another's draws.

Streams are derived from a root seed with :func:`numpy.random.SeedSequence`
spawn keys hashed from the stream name, which is the NumPy-recommended way
to build independent parallel streams.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory of independent, named :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Root seed for the whole experiment.

    Example
    -------
    >>> rngs = RngRegistry(seed=42)
    >>> a = rngs.stream("disk.0")
    >>> b = rngs.stream("disk.1")
    >>> a is rngs.stream("disk.0")   # cached per name
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The generator for ``name`` (created on first use)."""
        gen = self._streams.get(name)
        if gen is None:
            # crc32 gives a stable 32-bit key per name across runs/platforms.
            key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self.seed, spawn_key=(key,))
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def names(self) -> list[str]:
        """Names of all streams created so far, in creation order."""
        return list(self._streams)
