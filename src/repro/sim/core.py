"""Discrete-event simulation kernel.

A small, deterministic, generator-coroutine based discrete-event engine in
the style of SimPy, sufficient to model the Intel Paragon XP/S machine and
its parallel file system.  Processes are plain Python generators that
``yield`` :class:`Event` objects; the :class:`Environment` advances a
virtual clock and resumes processes when the events they wait on fire.

Determinism guarantees
----------------------
* Events scheduled for the same simulated time fire in schedule order
  (a monotone sequence number breaks ties), so a seeded run is perfectly
  reproducible.
* The kernel itself consumes no randomness; stochastic components draw
  from named :mod:`repro.sim.rng` streams.

Example
-------
>>> env = Environment()
>>> log = []
>>> def proc(env, name, delay):
...     yield env.timeout(delay)
...     log.append((env.now, name))
>>> _ = env.process(proc(env, "a", 2.0))
>>> _ = env.process(proc(env, "b", 1.0))
>>> env.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. negative delays, re-triggering)."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    Attributes
    ----------
    cause:
        The value passed to :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event states.
_PENDING = 0
_TRIGGERED = 1  # scheduled, waiting in queue
_PROCESSED = 2  # callbacks executed


class Event:
    """A happening at a point in simulated time.

    Events start *pending*; :meth:`succeed` or :meth:`fail` schedules them
    on the environment queue; once the clock reaches their time the
    environment runs their callbacks and marks them *processed*.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_state")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state = _PENDING

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception when it failed)."""
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Schedule the event to fire successfully at the current time."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        env = self.env
        env._immediate.append((env._seq, env.now, self))
        env._seq += 1
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Schedule the event to fire with an exception."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = _TRIGGERED
        env = self.env
        env._immediate.append((env._seq, env.now, self))
        env._seq += 1
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {_PENDING: "pending", _TRIGGERED: "triggered", _PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Inlined Event.__init__ plus scheduling: Timeout is the kernel's
        # most-allocated event type, so it pays to trigger in one shot.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._state = _TRIGGERED
        if delay.__class__ is not float:
            delay = float(delay)
        self.delay = delay
        if delay:
            heapq.heappush(env._queue, (env.now + delay, env._seq, self))
        else:
            env._immediate.append((env._seq, env.now, self))
        env._seq += 1


class Process(Event):
    """Wraps a generator; completes (as an event) when the generator ends.

    The wrapped generator may ``yield`` another :class:`Event` (including a
    :class:`Process`) — the process resumes when it fires, receiving its
    value, or having the exception raised inside the generator when it
    failed.  Yielding a non-event is a :class:`SimulationError`.
    """

    __slots__ = ("_generator", "_target", "name", "_observed")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        super().__init__(env)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"process() requires a generator, got {generator!r}")
        self._generator = generator
        self._target: Optional[Event] = None
        # True once another process waits on (observes) this one; an
        # unobserved failure is re-raised by Environment.run().
        self._observed = False
        self.name = name or getattr(generator, "__name__", "process")
        # Bootstrap: resume the process at the current time.  A direct
        # resume record on the immediate deque replaces the throwaway
        # bootstrap Event; it consumes one sequence number exactly as the
        # old event did, so the schedule order is unchanged.
        env._immediate.append((env._seq, env.now, None, self, None, False))
        env._seq += 1

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        waiting on an event detaches it from that event.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        env = self.env
        interrupt_event = Event(env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._state = _TRIGGERED
        interrupt_event.callbacks.append(self._resume_interrupt)
        env._schedule(interrupt_event, 0.0)

    # -- internal --------------------------------------------------------
    def _resume_interrupt(self, event: Event) -> None:
        if not self.is_alive:  # finished before the interrupt fired
            return
        if self._target is not None and self._resume in self._target.callbacks:
            self._target.callbacks.remove(self._resume)
        self._target = None
        self._step(event.value, throw=True)

    def _resume(self, event: Event) -> None:
        self._target = None
        self._step(event._value, throw=not event._ok)

    def _step(self, value: Any, throw: bool) -> None:
        try:
            if throw:
                target = self._generator.throw(value)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self._finish(True, stop.value)
            return
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self._finish(False, exc)
            return
        cls = target.__class__
        if cls is not Timeout and cls is not Event:
            # Exact-class fast path above covers almost every yield on the
            # data path; only subclasses and errors reach the full checks.
            if not isinstance(target, Event):
                err = SimulationError(
                    f"process {self.name!r} yielded non-event {target!r}"
                )
                self._generator.close()
                self._finish(False, err)
                return
            if isinstance(target, Process):
                target._observed = True
        if target._state == _PROCESSED:
            # Already fired: resume at the current timestamp via a direct
            # resume record (one seq number, like the old throwaway Event).
            env = self.env
            env._immediate.append(
                (env._seq, env.now, None, self, target._value, not target._ok)
            )
            env._seq += 1
        else:
            self._target = target
            target.callbacks.append(self._resume)

    def _finish(self, ok: bool, value: Any) -> None:
        self._ok = ok
        self._value = value
        self._state = _TRIGGERED
        env = self.env
        env._immediate.append((env._seq, env.now, self))
        env._seq += 1
        if not ok:
            env._note_failure(self, value)


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_done", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._done = 0
        self._count = len(self.events)
        for ev in self.events:
            if isinstance(ev, Process):
                ev._observed = True
        if not self.events:
            self.succeed({})
            return
        observe = self._observe
        for ev in self.events:
            if ev._state == _PROCESSED:
                observe(ev)
            else:
                ev.callbacks.append(observe)

    def _observe(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _values(self) -> dict:
        return {
            i: ev._value
            for i, ev in enumerate(self.events)
            if ev._state >= _TRIGGERED
        }


class AllOf(_Condition):
    """Fires when every constituent event has fired (dict of values)."""

    __slots__ = ()

    def _observe(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._done += 1
        if self._done == self._count:
            # Every constituent has fired by construction, so the state
            # filter in the base _values() is dead weight here.
            self.succeed({i: ev._value for i, ev in enumerate(self.events)})


class AnyOf(_Condition):
    """Fires when the first constituent event fires (dict of values)."""

    __slots__ = ()

    def _observe(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed(self._values())


class Environment:
    """Simulation clock plus event queue.

    Scheduling uses two structures that together realize one total
    (time, seq) order:

    * ``_queue`` — a binary heap of ``(time, seq, event)`` for events with
      a strictly positive delay;
    * ``_immediate`` — a FIFO deque for zero-delay work at the current
      time.  Entries are ``(seq, time, event)`` or, for direct process
      resumes that skip the throwaway Event entirely,
      ``(seq, time, None, process, value, throw)``.

    Every scheduling action consumes exactly one sequence number, and
    :meth:`step` always executes the entry with the globally smallest
    ``(time, seq)`` key: the deque is FIFO over monotonically increasing
    sequence numbers at times <= now, so its head is comparable against
    the heap top in O(1).  The firing order is therefore *identical* to
    a single-heap kernel — same-time events still fire in schedule order
    — while the common zero-delay case avoids the heap's log-n cost and
    the bootstrap/immediate events avoid allocation altogether (see
    docs/PERFORMANCE.md for the invariant argument).

    Background events
    -----------------
    ``background`` counts heap-scheduled events that must not keep the
    simulation alive: :meth:`run` returns — without advancing the clock —
    as soon as only background events remain.  A periodic observer (the
    telemetry sampler) increments it when arming a timeout and decrements
    it when the timeout fires; because the count covers only events with
    a strictly positive delay, the zero-delay fast path is untouched, and
    an unfired background timeout simply stays queued for a later
    :meth:`run` call (e.g. the next program of a multi-program pipeline).

    Parameters
    ----------
    initial_time:
        Starting value of :attr:`now` (seconds).
    """

    def __init__(self, initial_time: float = 0.0):
        self.now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._immediate: deque = deque()
        self._seq = 0
        self._unhandled: list[BaseException] = []
        #: Pending heap events that must not keep the simulation alive.
        self.background = 0
        #: Phase-boundary callbacks: run once all work at the current
        #: instant is exhausted, before the clock advances (see
        #: :meth:`at_boundary`).
        self._boundary: list[Callable[[], None]] = []

    # -- factory helpers ---------------------------------------------------
    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register a generator as a simulation process."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    def defer(self, callback: Callable[[Event], None]) -> Event:
        """Run ``callback`` at the current time, after already-queued
        same-time work (the callback-level analog of a zero timeout)."""
        ev = Event(self)
        ev._state = _TRIGGERED
        ev.callbacks.append(callback)
        self._immediate.append((self._seq, self.now, ev))
        self._seq += 1
        return ev

    def schedule_at(self, when: float, value: Any = None) -> Event:
        """A triggered event firing at *absolute* simulated time ``when``.

        The batched service path arms completions at precomputed absolute
        times; scheduling the stored float directly (instead of a
        ``Timeout`` of ``when - now``) keeps completion timestamps
        bit-identical to the chained scalar path, where ``a + (b - a)``
        need not round back to ``b``.  ``when`` at or before the current
        time lands on the immediate deque (fires after already-queued
        same-time work, like any fresh trigger).
        """
        if when < self.now:
            raise SimulationError(f"schedule_at({when}) is in the past (now={self.now})")
        ev = Event(self)
        ev._value = value
        ev._state = _TRIGGERED
        if when > self.now:
            heapq.heappush(self._queue, (when, self._seq, ev))
        else:
            self._immediate.append((self._seq, self.now, ev))
        self._seq += 1
        return ev

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event firing when any of ``events`` has fired."""
        return AnyOf(self, events)

    def at_boundary(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` at the next *phase boundary*.

        A phase boundary is the instant where every event and process
        resume queued at the current timestamp has executed and the
        kernel is about to advance the clock (or return).  At that point
        no more work can be scheduled *at* the current time, so a
        callback sees a complete picture of everything that happened
        "now" — the hook the fluid servicer uses to close a cohort of
        enrollments before computing the phase analytically.

        Callbacks run in registration order, may schedule new events
        (including new immediate work at the current time, which the
        kernel then drains before advancing), and may register further
        boundary callbacks.  Each callback fires exactly once.
        """
        self._boundary.append(callback)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float) -> None:
        if delay:
            heapq.heappush(self._queue, (self.now + delay, self._seq, event))
        else:
            self._immediate.append((self._seq, self.now, event))
        self._seq += 1

    def _note_failure(self, process: Process, exc: BaseException) -> None:
        if not process._observed:
            self._unhandled.append(exc)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        # Immediate entries were scheduled at a time <= now, and every
        # heap entry lies at >= now, so the deque head (if any) is next.
        if self._immediate:
            return self._immediate[0][1]
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next entry in global (time, seq) order."""
        imm = self._immediate
        queue = self._queue
        if imm:
            head = imm[0]
            if queue:
                top = queue[0]
                # Pop the heap only when it is strictly earlier in the
                # total (time, seq) order than the deque head.
                if top[0] < head[1] or (top[0] == head[1] and top[1] < head[0]):
                    when, _, event = heapq.heappop(queue)
                    self.now = when
                    event._state = _PROCESSED
                    callbacks, event.callbacks = event.callbacks, []
                    for cb in callbacks:
                        cb(event)
                    return
            imm.popleft()
            self.now = head[1]
            if len(head) == 3:
                event = head[2]
                event._state = _PROCESSED
                callbacks, event.callbacks = event.callbacks, []
                for cb in callbacks:
                    cb(event)
            else:
                # Direct process resume: no Event was allocated.
                head[3]._step(head[4], head[5])
            return
        if not queue:
            raise SimulationError("step() on empty queue")
        when, _, event = heapq.heappop(queue)
        self.now = when
        event._state = _PROCESSED
        callbacks, event.callbacks = event.callbacks, []
        for cb in callbacks:
            cb(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock passes ``until``.

        Events marked :attr:`background` do not count as pending work:
        once they are all that remains, the run returns with ``now`` at
        the last foreground event.  Background events must be armed
        before ``run()`` is entered (re-arming an existing one from its
        own callback is fine); the no-background fast loop below treats
        a *first* background event armed mid-run as foreground.

        Re-raises the first exception from a process nobody waited on, so
        silent failures cannot corrupt an experiment.
        """
        if until is not None and until < self.now:
            raise SimulationError(f"until={until} is in the past (now={self.now})")
        imm = self._immediate
        queue = self._queue
        unhandled = self._unhandled
        if self.background:
            # The *net* number of armed background events must stay
            # constant while run() drains (a background callback may
            # re-arm itself; it must not arm extras or stop re-arming
            # mid-run), so the count can be read once outside the loop.
            background = self.background
            step = self.step
            while imm or len(queue) > background or self._boundary:
                if not imm and self._boundary:
                    # Current-instant work is exhausted: fire the phase
                    # boundary before the clock can advance.  Drain in
                    # place so callbacks registering further boundaries
                    # land on the same (live) list.
                    callbacks = self._boundary[:]
                    del self._boundary[:]
                    for cb in callbacks:
                        cb()
                    if unhandled:
                        exc = unhandled[0]
                        unhandled.clear()
                        raise exc
                    continue
                # Immediate entries fire at <= now <= until, so the stop
                # check only matters when the heap is next.
                if not imm and until is not None and queue[0][0] > until:
                    self.now = until
                    return
                step()
                if unhandled:
                    exc = unhandled[0]
                    unhandled.clear()
                    raise exc
        else:
            # No background events: the dominant case runs a fully
            # inlined dispatch loop — step()'s body, minus the call, plus
            # a same-time cohort drain on the heap branch.  Once a heap
            # event at time T fires, every further heap entry at exactly
            # T necessarily predates (has a smaller seq than) anything
            # the cohort's callbacks put on the immediate deque, so the
            # whole cohort can be popped in one run without re-comparing
            # against the deque head between events.  Firing order is
            # still exactly the global (time, seq) order.
            pop = heapq.heappop
            popleft = imm.popleft
            boundary = self._boundary  # live alias; drained in place
            while imm or queue or boundary:
                if imm:
                    head = imm[0]
                    if queue:
                        top = queue[0]
                        # Pop the heap only when it is strictly earlier
                        # in the total (time, seq) order than the head.
                        if top[0] < head[1] or (
                            top[0] == head[1] and top[1] < head[0]
                        ):
                            when, _, event = pop(queue)
                            self.now = when
                            event._state = _PROCESSED
                            callbacks, event.callbacks = event.callbacks, []
                            for cb in callbacks:
                                cb(event)
                            if unhandled:
                                exc = unhandled[0]
                                unhandled.clear()
                                raise exc
                            continue
                    popleft()
                    self.now = head[1]
                    if len(head) == 3:
                        event = head[2]
                        event._state = _PROCESSED
                        callbacks, event.callbacks = event.callbacks, []
                        for cb in callbacks:
                            cb(event)
                    else:
                        # Direct process resume: no Event was allocated.
                        head[3]._step(head[4], head[5])
                    if unhandled:
                        exc = unhandled[0]
                        unhandled.clear()
                        raise exc
                    continue
                if boundary:
                    # Phase boundary: the current instant is fully
                    # drained, fire callbacks before advancing the clock.
                    callbacks = boundary[:]
                    del boundary[:]
                    for cb in callbacks:
                        cb()
                    if unhandled:
                        exc = unhandled[0]
                        unhandled.clear()
                        raise exc
                    continue
                when = queue[0][0]
                if until is not None and when > until:
                    self.now = until
                    return
                self.now = when
                # Same-time cohort: drain every heap event at exactly
                # `when`.  New immediate entries and new heap pushes from
                # the callbacks always sort after the remaining cohort
                # members (larger seq / strictly later time), so no
                # per-event deque comparison is needed.
                while True:
                    event = pop(queue)[2]
                    event._state = _PROCESSED
                    callbacks, event.callbacks = event.callbacks, []
                    for cb in callbacks:
                        cb(event)
                    if unhandled:
                        exc = unhandled[0]
                        unhandled.clear()
                        raise exc
                    if imm or not queue or queue[0][0] != when:
                        break
        if until is not None and until > self.now:
            self.now = until
