"""Discrete-event simulation kernel.

A small, deterministic, generator-coroutine based discrete-event engine in
the style of SimPy, sufficient to model the Intel Paragon XP/S machine and
its parallel file system.  Processes are plain Python generators that
``yield`` :class:`Event` objects; the :class:`Environment` advances a
virtual clock and resumes processes when the events they wait on fire.

Determinism guarantees
----------------------
* Events scheduled for the same simulated time fire in schedule order
  (a monotone sequence number breaks ties), so a seeded run is perfectly
  reproducible.
* The kernel itself consumes no randomness; stochastic components draw
  from named :mod:`repro.sim.rng` streams.

Example
-------
>>> env = Environment()
>>> log = []
>>> def proc(env, name, delay):
...     yield env.timeout(delay)
...     log.append((env.now, name))
>>> _ = env.process(proc(env, "a", 2.0))
>>> _ = env.process(proc(env, "b", 1.0))
>>> env.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. negative delays, re-triggering)."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    Attributes
    ----------
    cause:
        The value passed to :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


# Event states.
_PENDING = 0
_TRIGGERED = 1  # scheduled, waiting in queue
_PROCESSED = 2  # callbacks executed


class Event:
    """A happening at a point in simulated time.

    Events start *pending*; :meth:`succeed` or :meth:`fail` schedules them
    on the environment queue; once the clock reaches their time the
    environment runs their callbacks and marks them *processed*.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_state")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._state = _PENDING

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception when it failed)."""
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Schedule the event to fire successfully at the current time."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        self.env._schedule(self, 0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Schedule the event to fire with an exception."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = _TRIGGERED
        self.env._schedule(self, 0.0)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {_PENDING: "pending", _TRIGGERED: "triggered", _PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = float(delay)
        self._value = value
        self._ok = True
        self._state = _TRIGGERED
        env._schedule(self, self.delay)


class Process(Event):
    """Wraps a generator; completes (as an event) when the generator ends.

    The wrapped generator may ``yield`` another :class:`Event` (including a
    :class:`Process`) — the process resumes when it fires, receiving its
    value, or having the exception raised inside the generator when it
    failed.  Yielding a non-event is a :class:`SimulationError`.
    """

    __slots__ = ("_generator", "_target", "name", "_observed")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        super().__init__(env)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"process() requires a generator, got {generator!r}")
        self._generator = generator
        self._target: Optional[Event] = None
        # True once another process waits on (observes) this one; an
        # unobserved failure is re-raised by Environment.run().
        self._observed = False
        self.name = name or getattr(generator, "__name__", "process")
        # Bootstrap: resume the process at the current time.
        boot = Event(env)
        boot.callbacks.append(self._resume)
        boot._state = _TRIGGERED
        env._schedule(boot, 0.0)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        waiting on an event detaches it from that event.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        env = self.env
        interrupt_event = Event(env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._state = _TRIGGERED
        interrupt_event.callbacks.append(self._resume_interrupt)
        env._schedule(interrupt_event, 0.0)

    # -- internal --------------------------------------------------------
    def _resume_interrupt(self, event: Event) -> None:
        if not self.is_alive:  # finished before the interrupt fired
            return
        if self._target is not None and self._resume in self._target.callbacks:
            self._target.callbacks.remove(self._resume)
        self._target = None
        self._step(event.value, throw=True)

    def _resume(self, event: Event) -> None:
        self._target = None
        self._step(event._value, throw=not event._ok)

    def _step(self, value: Any, throw: bool) -> None:
        try:
            if throw:
                target = self._generator.throw(value)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self._finish(True, stop.value)
            return
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self._finish(False, exc)
            return
        if not isinstance(target, Event):
            err = SimulationError(
                f"process {self.name!r} yielded non-event {target!r}"
            )
            self._generator.close()
            self._finish(False, err)
            return
        if isinstance(target, Process):
            target._observed = True
        if target.processed:
            # Already fired: resume at the current timestamp.
            immediate = Event(self.env)
            immediate._ok = target._ok
            immediate._value = target._value
            immediate._state = _TRIGGERED
            immediate.callbacks.append(self._resume)
            self.env._schedule(immediate, 0.0)
        else:
            self._target = target
            target.callbacks.append(self._resume)

    def _finish(self, ok: bool, value: Any) -> None:
        self._ok = ok
        self._value = value
        self._state = _TRIGGERED
        self.env._schedule(self, 0.0)
        if not ok:
            self.env._note_failure(self, value)


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_done")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._done = 0
        for ev in self.events:
            if isinstance(ev, Process):
                ev._observed = True
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.processed:
                self._observe(ev)
            else:
                ev.callbacks.append(self._observe)

    def _observe(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _values(self) -> dict:
        return {
            i: ev._value
            for i, ev in enumerate(self.events)
            if ev._state >= _TRIGGERED
        }


class AllOf(_Condition):
    """Fires when every constituent event has fired (dict of values)."""

    __slots__ = ()

    def _observe(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._done += 1
        if self._done == len(self.events):
            self.succeed(self._values())


class AnyOf(_Condition):
    """Fires when the first constituent event fires (dict of values)."""

    __slots__ = ()

    def _observe(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self.succeed(self._values())


class Environment:
    """Simulation clock plus event queue.

    Parameters
    ----------
    initial_time:
        Starting value of :attr:`now` (seconds).
    """

    def __init__(self, initial_time: float = 0.0):
        self.now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._unhandled: list[BaseException] = []

    # -- factory helpers ---------------------------------------------------
    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register a generator as a simulation process."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event firing when any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float) -> None:
        heapq.heappush(self._queue, (self.now + delay, self._seq, event))
        self._seq += 1

    def _note_failure(self, process: Process, exc: BaseException) -> None:
        if not process._observed:
            self._unhandled.append(exc)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("step() on empty queue")
        when, _, event = heapq.heappop(self._queue)
        self.now = when
        event._state = _PROCESSED
        callbacks, event.callbacks = event.callbacks, []
        for cb in callbacks:
            cb(event)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock passes ``until``.

        Re-raises the first exception from a process nobody waited on, so
        silent failures cannot corrupt an experiment.
        """
        if until is not None and until < self.now:
            raise SimulationError(f"until={until} is in the past (now={self.now})")
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self.now = until
                return
            self.step()
            if self._unhandled:
                exc = self._unhandled[0]
                self._unhandled.clear()
                raise exc
        if until is not None and until > self.now:
            self.now = until
