"""Fluid fidelity: closed-form service of regular I/O phases.

Discrete-event simulation prices every request individually: each
``read``/``write``/``seek`` costs a handful of kernel events (client
overheads, mesh transfers, I/O-node queueing, completion countdowns).
For the paper's workloads that is wasted work — the long middle phases
(HTF's integral write loop and SCF read sweeps, ESCAT's iteration loop,
synchronized checkpoint dumps) are *regular*: every node runs the same
compute/IO chain against the same striped files, and the whole phase's
timing is determined by the same service laws the event kernel applies
one event at a time.

:class:`FluidServicer` exploits that regularity.  Applications *offer*
a phase to the servicer as a cohort of per-node **plans** — flat op
chains built with the module-level constructors (:func:`compute`,
:func:`barrier`, :func:`seek`, :func:`write`, :func:`read`,
:func:`flush`, :func:`mark`).  Once every party has enrolled, the
servicer waits for the kernel's phase boundary
(:meth:`Environment.at_boundary` — the instant when all same-time work
is drained) and then solves the whole phase in one pass:

* a single :mod:`heapq` loop processes ops in global start-time order,
  so cross-node interactions (shared-file write tokens, barrier
  releases, I/O-node FIFO queueing) resolve exactly as the event kernel
  would resolve them at op granularity;
* each chunk is priced through the *real* component laws —
  :meth:`StripeLayout.decompose`, the memoized
  :meth:`Mesh.message_time`, and :meth:`Raid3Array.service_time` (whose
  head-state mutation doubles as state absorption);
* the pass emits the same per-op trace rows and bumps the same
  filesystem / I/O-node / telemetry counters the discrete path would,
  then arms **one** :meth:`Environment.schedule_at` completion per plan
  instead of thousands of per-request events.

Fluid mode is approximate by contract (see ``docs/PERFORMANCE.md``):
chunks of one op are enqueued at the I/O node as a unit, so sub-
millisecond arrival interleavings *between* ops can be reordered, and
per-op compute jitter is drawn at plan-build time rather than
interleaved with other nodes' draws.  Total service demand is
conserved, so phase makespans track the discrete twin closely (the
test suite and ``BENCH_fluid.json`` bound the error).  Anything the
closed form cannot reproduce **declines** instead of approximating:

* unhealthy machine — any non-eager or faulted I/O node, or an active
  fault injector (the experiment layer never attaches a servicer when
  faults are configured);
* PPFS interposition — client/server caches, prefetching, or
  write-behind (cache state and drain timing feed back into request
  ordering);
* burst-buffer-tiered files, shared-pointer / fixed-record /
  collective / ordered access modes, buffered small writes, and
  block-buffered small reads (all carry cross-request state the
  per-op laws above do not model).

A declined offer returns ``None`` and the application falls back to
its ordinary discrete loop, byte-identical to an ``--fidelity event``
run.  Because eligibility is checked against a cheap *probe* (op
shapes only) before the plan builder runs, a declined offer consumes
no RNG draws and perturbs nothing.
"""

from __future__ import annotations

import heapq
from functools import partial
from typing import TYPE_CHECKING, Any, Callable, Hashable, Optional, Sequence

from ..pablo.events import Op
from .core import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..pfs.filesystem import PFS

__all__ = [
    "FluidServicer",
    "compute",
    "barrier",
    "seek",
    "write",
    "read",
    "flush",
    "mark",
]

# Plan op opcodes.  Raw (application-facing) tuples carry file
# descriptors; enroll resolves them to (file, cursor) pairs once.
OP_COMPUTE, OP_BARRIER, OP_SEEK, OP_WRITE, OP_READ, OP_FLUSH, OP_MARK = range(7)

_BARRIER = (OP_BARRIER,)


def compute(seconds: float) -> tuple:
    """Local computation for ``seconds`` (accrues node compute time)."""
    return (OP_COMPUTE, seconds)


def barrier() -> tuple:
    """Cohort-wide barrier: all plans arrive, all release at the max."""
    return _BARRIER


def seek(fd: int, offset: int) -> tuple:
    """Reposition ``fd``'s pointer (shared files serialize on the token)."""
    return (OP_SEEK, fd, offset)


def write(fd: int, nbytes: int) -> tuple:
    """Unbuffered write of ``nbytes`` at the current pointer."""
    return (OP_WRITE, fd, nbytes)


def read(fd: int, nbytes: int) -> tuple:
    """Direct (unbuffered) read of ``nbytes`` at the current pointer."""
    return (OP_READ, fd, nbytes)


def flush(fd: int) -> tuple:
    """Flush ``fd`` (a control visit to the first I/O node when dirty)."""
    return (OP_FLUSH, fd)


def mark(label: str) -> tuple:
    """Record ``(label, time)`` in the plan's marks (returned on completion)."""
    return (OP_MARK, label)


class _Plan:
    """One node's op chain within a cohort."""

    __slots__ = (
        "node", "start", "ops", "mod", "done", "idx", "bidx", "marks",
        "end", "trace_add", "observers",
    )

    def __init__(self, node, start, ops, ifs, mod, done):
        self.node = node
        self.start = start
        self.ops = ops
        self.mod = mod
        self.done = done
        self.idx = 0
        self.bidx = 0
        self.marks: list[tuple[str, float]] = []
        self.end: Optional[float] = None
        self.trace_add = ifs.trace.add
        self.observers = ifs._observers


class _Cohort:
    """Enrollment state for one phase key."""

    __slots__ = ("key", "parties", "plans", "declined", "joined")

    def __init__(self, key, parties, declined):
        self.key = key
        self.parties = parties
        self.plans: list[_Plan] = []
        self.declined = declined
        self.joined = 0


class FluidServicer:
    """Phase-level analytic servicer attached to a :class:`PFS`.

    Created by :meth:`Experiment.run` under ``--fidelity fluid`` (and
    only when no fault injector is active) and published as
    ``fs.fluid``; applications discover it via the raw filesystem and
    offer their regular phases with :meth:`enroll`.
    """

    def __init__(self, fs: "PFS") -> None:
        self.fs = fs
        self.env = fs.env
        self.machine = fs.machine
        self._cohorts: dict[Hashable, _Cohort] = {}
        #: per-phase summaries (key, parties, ops, span) for reporting
        self.phases: list[dict[str, Any]] = []
        self.phases_solved = 0
        self.phases_declined = 0
        self.ops_serviced = 0

    # -- eligibility ------------------------------------------------------

    def _machine_ok(self) -> bool:
        """Whole-machine preconditions for closed-form service."""
        for ion in self.machine.ionodes:
            if not ion._eager or ion._faulty:
                return False
        writeback = getattr(self.fs, "writeback", None)
        if writeback is not None and not writeback.idle:
            return False
        return True

    def _validate(self, node: int, probe: Sequence[tuple], parties: int) -> bool:
        """Check a probe (op shapes) against per-file eligibility rules.

        ``f.shared`` may still be settling while early parties enroll
        (opens serialize on the metadata server), so the buffered-write
        check trusts ``parties > 1`` to mean the file will be shared by
        the time any plan op runs; the solver re-checks and raises if an
        accepted small write turns out private after all.
        """
        fs = self.fs
        c = fs.costs
        for op in probe:
            kind = op[0]
            if kind == OP_COMPUTE or kind == OP_BARRIER or kind == OP_MARK:
                continue
            entry = fs._entry(node, op[1])
            f = entry.file
            if not fs.fluid_ok(f):
                return False
            sem = f.sem
            if (sem.shared_pointer or sem.fixed_records or sem.collective
                    or sem.node_order or sem.fcfs_order):
                return False
            if entry.wbuf_len:
                return False
            if kind == OP_WRITE:
                nbytes = op[2]
                if nbytes <= 0:
                    return False
                if (c.write_buffer_bytes > 0 and nbytes <= c.write_buffer_bytes
                        and not f.shared and parties == 1):
                    return False  # would take the buffered path
            elif kind == OP_READ:
                if op[2] <= c.read_buffer_bytes:
                    return False  # would take the block-buffered path
            elif kind == OP_SEEK:
                if not sem.seekable:
                    return False
        return True

    # -- enrollment -------------------------------------------------------

    def enroll(
        self,
        key: Hashable,
        parties: int,
        node: int,
        ifs,
        probe: Sequence[tuple],
        build: Callable[[], Sequence[tuple]],
        mod=None,
    ) -> Optional[Event]:
        """Offer one node's share of phase ``key`` for fluid service.

        ``probe`` is a cheap list of representative raw ops (one per
        distinct ``(fd, kind, nbytes)`` shape the plan will use) checked
        against the eligibility rules *before* ``build`` is called, so a
        decline consumes no RNG draws.  ``build`` returns the full raw op
        chain; ``ifs`` is the instrumented view rows are emitted through;
        ``mod`` (optional) is the compute node whose ``compute_time``
        absorbs :func:`compute` ops.

        Returns the plan's completion :class:`Event` — fired at the
        solved end time with the plan's ``(label, time)`` marks as its
        value — or ``None`` when the phase must run discretely.  The
        verdict is cohort-wide: the first party's decline caches so every
        later party also receives ``None``.
        """
        cohorts = self._cohorts
        cohort = cohorts.get(key)
        if cohort is None:
            cohort = cohorts[key] = _Cohort(key, parties, not self._machine_ok())
        if not cohort.declined and (
            getattr(ifs, "overhead_s", 0.0) != 0.0  # capture perturbation
            or not self._validate(node, probe, parties)
        ):
            if cohort.plans:
                raise RuntimeError(
                    f"fluid cohort {key!r}: node {node} failed eligibility "
                    f"after {len(cohort.plans)} plans were already accepted"
                )
            cohort.declined = True
        cohort.joined += 1
        if cohort.declined:
            if cohort.joined == parties:
                self.phases_declined += 1
                del cohorts[key]
            return None
        env = self.env
        ops = self._resolve(node, build())
        plan = _Plan(node, env.now, ops, ifs, mod, Event(env))
        cohort.plans.append(plan)
        if cohort.joined == parties:
            env.at_boundary(partial(self._solve, cohort))
        return plan.done

    def _resolve(self, node: int, raw: Sequence[tuple]) -> list[tuple]:
        """Rewrite raw fd-bearing ops to carry ``(file, cursor)`` directly."""
        fs = self.fs
        out = []
        for op in raw:
            kind = op[0]
            if kind == OP_WRITE or kind == OP_READ or kind == OP_SEEK:
                entry = fs._entry(node, op[1])
                out.append((kind, entry.file, entry, op[2]))
            elif kind == OP_FLUSH:
                entry = fs._entry(node, op[1])
                out.append((kind, entry.file, entry))
            else:
                out.append(op)
        return out

    # -- the solver -------------------------------------------------------

    def _solve(self, cohort: _Cohort) -> None:
        """Price the whole cohort in one pass and arm its completions.

        Ops are processed in global start-time order (a heap of per-plan
        resume times; a popped plan runs consecutive ops while it does
        not overtake the next-earliest plan), so token grants and FIFO
        disk queueing resolve in the same order the event kernel would
        grant them.
        """
        env = self.env
        fs = self.fs
        plans = cohort.plans
        parties = cohort.parties
        machine = fs.machine
        mesh_time = machine.mesh.message_time
        ionodes = machine.ionodes
        io_pos = fs._io_mesh_pos
        c = fs.costs
        op_overhead = c.client_op_overhead_s
        byte_cost = c.client_byte_cost_s
        seek_hold = c.shared_seek_hold_s
        write_hold = c.shared_write_hold_s
        flush_service = c.flush_service_s
        read_extra = c.read_chunk_extra_s
        write_extra = c.write_chunk_extra_per_byte_s
        wbuf_max = c.write_buffer_bytes
        op_read, op_write, op_seek, op_flush = Op.READ, Op.WRITE, Op.SEEK, Op.FLUSH
        telem = fs.telemetry
        now = env.now

        free = [ion._free_at for ion in ionodes]
        base_free = list(free)
        token_free: dict[Any, float] = {}
        barriers: dict[int, list] = {}
        n_ops = 0

        heap = [(p.start, i, p) for i, p in enumerate(plans)]
        heapq.heapify(heap)
        seq = len(plans)
        push = heapq.heappush

        while heap:
            t, _, plan = heapq.heappop(heap)
            ops = plan.ops
            nops = len(ops)
            node = plan.node
            trace_add = plan.trace_add
            observers = plan.observers
            while True:
                i = plan.idx
                if i == nops:
                    plan.end = t
                    break
                op = ops[i]
                kind = op[0]
                if kind == OP_BARRIER:
                    plan.idx = i + 1
                    b = plan.bidx
                    plan.bidx = b + 1
                    arrivals = barriers.get(b)
                    if arrivals is None:
                        arrivals = barriers[b] = []
                    arrivals.append(plan)
                    if len(arrivals) == parties:
                        # processed in time order, so this arrival is the max;
                        # re-queue waiters in arrival order (FIFO, like the
                        # discrete Barrier's waiter list).
                        for p in arrivals:
                            push(heap, (t, seq, p))
                            seq += 1
                    break
                n_ops += 1
                if kind == OP_COMPUTE:
                    dt = op[1]
                    t += dt
                    mod = plan.mod
                    if mod is not None:
                        mod.compute_time += dt
                elif kind == OP_WRITE:
                    f = op[1]
                    entry = op[2]
                    nbytes = op[3]
                    t0 = t
                    if telem is not None:
                        telem.writes += 1
                        telem.write_bytes += nbytes
                    t += op_overhead
                    entry.rbuf_start = entry.rbuf_end = -1
                    offset = f.tell(entry)
                    shared = f.shared
                    if not shared and 0 < wbuf_max >= nbytes:
                        raise RuntimeError(
                            f"fluid cohort {cohort.key!r}: accepted write of "
                            f"{nbytes} B on a private file would take the "
                            f"buffered path — the enrolling phase mis-hinted"
                        )
                    locked = f.sem.atomic and shared
                    if locked:
                        grant = token_free.get(f, 0.0)
                        if grant < t:
                            grant = t
                        t = grant + write_hold
                    op_end = t
                    for chunk in f.layout.decompose(offset, nbytes):
                        ci = chunk.ionode
                        ion = ionodes[ci]
                        cn = chunk.nbytes
                        arrival = t + mesh_time(node, io_pos[ci], cn)
                        service = (
                            ion.params.request_overhead_s
                            + cn * write_extra
                            + ion.array.service_time(chunk.disk_offset, cn, True)
                        )
                        fi = free[ci]
                        start = arrival if arrival > fi else fi
                        end = start + service
                        free[ci] = end
                        ion.requests_served += 1
                        ion.bytes_served += cn
                        ion.busy_time += service
                        observe = ion._telem
                        if observe is not None:
                            observe(cn)
                        if end > op_end:
                            op_end = end
                    t = op_end + nbytes * byte_cost
                    if locked:
                        token_free[f] = t
                    f.note_write(node, offset, nbytes)
                    f.advance(entry, nbytes)
                    entry.last_op_offset = offset
                    dur = t - t0
                    trace_add(t0, node, op_write, f.file_id, offset, nbytes, dur)
                    for obs in observers:
                        obs.observe(t0, node, op_write, f.file_id, offset,
                                    nbytes, dur)
                elif kind == OP_READ:
                    f = op[1]
                    entry = op[2]
                    nbytes = op[3]
                    t0 = t
                    t += op_overhead
                    offset = f.tell(entry)
                    count = f.readable_bytes(offset, nbytes)
                    if count:
                        op_end = t
                        for chunk in f.layout.decompose(offset, count):
                            ci = chunk.ionode
                            ion = ionodes[ci]
                            cn = chunk.nbytes
                            arrival = t + mesh_time(node, io_pos[ci], cn)
                            service = (
                                ion.params.request_overhead_s
                                + read_extra
                                + ion.array.service_time(chunk.disk_offset, cn,
                                                         False)
                            )
                            fi = free[ci]
                            start = arrival if arrival > fi else fi
                            end = start + service
                            free[ci] = end
                            ion.requests_served += 1
                            ion.bytes_served += cn
                            ion.busy_time += service
                            observe = ion._telem
                            if observe is not None:
                                observe(cn)
                            if end > op_end:
                                op_end = end
                        t = op_end + count * byte_cost
                    f.advance(entry, count)
                    entry.last_op_offset = offset
                    if telem is not None:
                        telem.reads += 1
                        telem.read_bytes += count
                    dur = t - t0
                    trace_add(t0, node, op_read, f.file_id, offset, count, dur)
                    for obs in observers:
                        obs.observe(t0, node, op_read, f.file_id, offset,
                                    count, dur)
                elif kind == OP_SEEK:
                    f = op[1]
                    entry = op[2]
                    target = op[3]
                    t0 = t
                    if telem is not None:
                        telem.seeks += 1
                    before = f.tell(entry)
                    entry.rbuf_start = entry.rbuf_end = -1
                    t += op_overhead
                    if f.shared:
                        grant = token_free.get(f, 0.0)
                        if grant < t:
                            grant = t
                        t = grant + seek_hold
                        token_free[f] = t
                    f.set_pointer(entry, target)
                    moved = target - before
                    if moved < 0:
                        moved = -moved
                    dur = t - t0
                    trace_add(t0, node, op_seek, f.file_id, target, moved, dur)
                    for obs in observers:
                        obs.observe(t0, node, op_seek, f.file_id, target,
                                    moved, dur)
                elif kind == OP_FLUSH:
                    f = op[1]
                    t0 = t
                    t += op_overhead
                    if node in f.dirty_nodes:
                        ci = f.layout.first_ionode
                        fi = free[ci]
                        start = t if t > fi else fi
                        end = start + flush_service
                        free[ci] = end
                        ionodes[ci].busy_time += flush_service
                        t = end
                        f.dirty_nodes.discard(node)
                    dur = t - t0
                    trace_add(t0, node, op_flush, f.file_id, 0, 0, dur)
                    for obs in observers:
                        obs.observe(t0, node, op_flush, f.file_id, 0, 0, dur)
                else:  # OP_MARK
                    plan.marks.append((op[1], t))
                plan.idx = i + 1
                if heap and t > heap[0][0]:
                    push(heap, (t, seq, plan))
                    seq += 1
                    break

        stuck = [p for p in plans if p.end is None]
        if stuck:
            raise RuntimeError(
                f"fluid cohort {cohort.key!r}: {len(stuck)} of {parties} "
                f"plans never finished — divergent barrier structure"
            )

        # Absorb the busy horizon so later *discrete* submits queue
        # behind the fluid tail exactly as they would behind real work.
        for ci, end in enumerate(free):
            if end > base_free[ci]:
                ionodes[ci].sync_free_at(end)

        first = min(p.start for p in plans)
        last = now
        for plan in plans:
            end = plan.end
            if end > last:
                last = end
            if end < now:
                end = now  # clamp: completions may not precede the solve
            env.schedule_at(end).callbacks.append(partial(self._finish, plan))
        spans = getattr(fs, "spans", None)
        if spans is not None:
            # Closed-form phases have no per-request events to hook, so the
            # solver synthesizes its span tree directly: one phase-level
            # span plus one span per solved plan (aux = op count).
            psid = spans.add("fluid.phase", -1, first, last, aux=float(n_ops))
            for plan in plans:
                spans.add(
                    "fluid.plan", plan.node, plan.start, plan.end, psid,
                    aux=float(len(plan.ops)),
                )
        self.phases_solved += 1
        self.ops_serviced += n_ops
        self.phases.append({
            "key": cohort.key if isinstance(cohort.key, str) else repr(cohort.key),
            "parties": parties,
            "ops": n_ops,
            "start": first,
            "end": last,
        })
        del self._cohorts[cohort.key]

    @staticmethod
    def _finish(plan: _Plan, _event) -> None:
        plan.done.succeed(plan.marks)
