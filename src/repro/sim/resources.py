"""Shared resources for the simulation kernel.

Provides the coordination primitives the machine model needs:

* :class:`Resource` — a capacity-limited server with a FIFO request queue
  (used for disk arms, I/O-node service, mesh links, metadata servers).
* :class:`PriorityResource` — like :class:`Resource` with numeric
  priorities (lower first).
* :class:`Store` — an unbounded (or bounded) FIFO message queue (used for
  mailbox-style node communication).
* :class:`Barrier` — an N-party synchronization point (used for the
  synchronized write groups in ESCAT and node-ordered PFS modes).
* :class:`Token` — a mutual-exclusion token with FIFO handoff (used for
  shared-file-pointer PFS modes).

All waiting is expressed through kernel events, so these primitives inherit
the kernel's determinism.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from .core import Environment, Event, SimulationError

__all__ = ["Resource", "PriorityResource", "Store", "Barrier", "Token"]


class Request(Event):
    """Event granted once the resource has capacity for the requester."""

    __slots__ = ("resource", "priority", "order")

    def __init__(self, resource: "Resource", priority: float = 0.0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self.order = resource._order
        resource._order += 1


class Resource:
    """A server pool with ``capacity`` concurrent slots and a FIFO queue.

    Usage from a process::

        req = resource.request()
        yield req
        try:
            ... use the resource ...
        finally:
            resource.release(req)
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.users: list[Request] = []
        self.queue: deque[Request] = deque()
        self._order = 0

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    def request(self, priority: float = 0.0) -> Request:
        """Ask for a slot; the returned event fires when granted."""
        req = Request(self, priority)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed()
        else:
            self._enqueue(req)
        return req

    def release(self, request: Request) -> None:
        """Return a granted slot and admit the next waiter, if any."""
        try:
            self.users.remove(request)
        except ValueError:
            raise SimulationError("release() of a request that is not a user")
        if self.queue:
            nxt = self._dequeue()
            self.users.append(nxt)
            nxt.succeed()

    # FIFO policy; PriorityResource overrides.
    def _enqueue(self, req: Request) -> None:
        self.queue.append(req)

    def _dequeue(self) -> Request:
        return self.queue.popleft()


class PriorityResource(Resource):
    """Resource whose queue is ordered by (priority, arrival order)."""

    def _enqueue(self, req: Request) -> None:
        self.queue.append(req)
        # Keep the deque sorted; queues here are short (node counts), so
        # insertion-sort cost is negligible next to event dispatch.
        self.queue = deque(sorted(self.queue, key=lambda r: (r.priority, r.order)))

    def _dequeue(self) -> Request:
        return self.queue.popleft()


class Store:
    """FIFO item queue with blocking ``get`` and optional capacity bound."""

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise SimulationError(f"capacity must be >= 1 or None, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def put(self, item: Any) -> Event:
        """Deposit ``item``; the event fires when accepted."""
        ev = Event(self.env)
        if self._getters:
            self._getters.popleft().succeed(item)
            ev.succeed()
        elif self.capacity is None or len(self.items) < self.capacity:
            self.items.append(item)
            ev.succeed()
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """Obtain the oldest item; the event's value is the item."""
        ev = Event(self.env)
        if self.items:
            ev.succeed(self.items.popleft())
            if self._putters:
                put_ev, item = self._putters.popleft()
                self.items.append(item)
                put_ev.succeed()
        else:
            self._getters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self.items)


class Barrier:
    """N-party barrier: the event fires when ``parties`` processes arrive.

    A barrier is reusable: once it releases, the next ``wait`` starts a new
    generation.
    """

    def __init__(self, env: Environment, parties: int):
        if parties < 1:
            raise SimulationError(f"parties must be >= 1, got {parties}")
        self.env = env
        self.parties = parties
        self._arrived = 0
        self._event = Event(env)
        self.generation = 0

    def wait(self) -> Event:
        """Arrive at the barrier; returned event fires when all have."""
        ev = self._event
        self._arrived += 1
        if self._arrived == self.parties:
            ev.succeed(self.generation)
            self._arrived = 0
            self.generation += 1
            self._event = Event(self.env)
        return ev


class Token:
    """Mutual-exclusion token with FIFO handoff.

    Models a shared file pointer: the holder performs its operation and
    passes the token on.  ``acquire`` returns an event that fires when the
    caller holds the token; ``release`` hands it to the next waiter.
    """

    def __init__(self, env: Environment):
        self.env = env
        self._held = False
        self._waiters: deque[Event] = deque()

    @property
    def held(self) -> bool:
        return self._held

    def acquire(self) -> Event:
        ev = Event(self.env)
        if not self._held:
            self._held = True
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if not self._held:
            raise SimulationError("release() of a token not held")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._held = False
