"""Application skeletons: ESCAT, RENDER, the HTF pipeline, and the
checkpoint/restart family."""

from .base import Application, Collective, PhaseMark
from .checkpoint import Checkpoint, CheckpointConfig, CheckpointStats
from .escat import Escat, EscatConfig
from .escat_science import ScienceEscat, ScienceEscatConfig
from .htf import HartreeFock, HTFConfig, HTFResult, Pargos, Pscf, Psetup
from .htf_science import ScienceHartreeFock, ScienceHTFConfig
from .render_science import ScienceRender, ScienceRenderConfig
from .render import Render, RenderConfig
from .synthetic import SyntheticConfig, SyntheticKernel
from .trace import TraceReplay, TraceReplayConfig
from .workloads import (
    paper_checkpoint,
    paper_escat,
    paper_htf,
    paper_machine,
    paper_render,
    paper_trace,
    small_checkpoint,
    small_escat,
    small_htf,
    small_machine,
    small_render,
    small_trace,
)

__all__ = [
    "Application",
    "Collective",
    "PhaseMark",
    "Checkpoint",
    "CheckpointConfig",
    "CheckpointStats",
    "Escat",
    "EscatConfig",
    "ScienceEscat",
    "ScienceEscatConfig",
    "HartreeFock",
    "HTFConfig",
    "HTFResult",
    "Pargos",
    "Pscf",
    "Psetup",
    "ScienceHartreeFock",
    "ScienceHTFConfig",
    "ScienceRender",
    "ScienceRenderConfig",
    "Render",
    "RenderConfig",
    "SyntheticConfig",
    "SyntheticKernel",
    "TraceReplay",
    "TraceReplayConfig",
    "paper_checkpoint",
    "paper_escat",
    "paper_htf",
    "paper_machine",
    "paper_render",
    "paper_trace",
    "small_checkpoint",
    "small_escat",
    "small_htf",
    "small_machine",
    "small_render",
    "small_trace",
]
