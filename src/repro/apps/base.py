"""Shared scaffolding for the application skeletons.

The skeletons (ESCAT, RENDER, HTF) are message-passing SPMD programs: a
process per compute node, coordinated with barriers and root-mediated
broadcasts, issuing I/O through an :class:`~repro.pablo.capture.InstrumentedPFS`.
This module provides that scaffolding plus the run harness that returns
the captured trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine.paragon import Paragon
from ..pablo.capture import InstrumentedPFS
from ..pablo.trace import Trace
from ..sim.core import Environment, Event
from ..sim.resources import Barrier
from ..spans.record import LEAF_BARRIER_WAIT, LEAF_MESH_BCAST

__all__ = ["Collective", "Application", "PhaseMark"]


class Collective:
    """Barrier + broadcast/gather coordination for an SPMD node group."""

    def __init__(self, machine: Paragon, nodes: list[int]):
        if not nodes:
            raise ValueError("node group must be non-empty")
        self.machine = machine
        self.env: Environment = machine.env
        self.nodes = list(nodes)
        self._barrier = Barrier(self.env, len(nodes))
        self._bcast_done: dict[int, Event] = {}
        self._node_gen: dict[int, int] = {}
        self._bar_base = -1.0

    def barrier(self):
        """Event: fires when every node in the group has arrived."""
        spans = getattr(self.machine, "spans", None)
        if spans is not None:
            # Hottest wait site (one call per node per barrier): stage
            # one record per arrival with the release time encoded as
            # ``-(generation id + 1)``.  A barrier releases at its last
            # arrival's timestamp, so finalize rewrites the end to the
            # generation's max start — no callback on the release event.
            base = self._bar_base
            if base < 0.0:
                base = self._bar_base = spans.alloc_barrier_base()
            spans.leaf_raw.append(
                (LEAF_BARRIER_WAIT, -1.0, self.env.now,
                 -1.0 - (base + self._barrier.generation), 0.0)
            )
        return self._barrier.wait()

    def broadcast(self, node: int, root: int, nbytes: int):
        """Process generator: root-mediated broadcast of ``nbytes``.

        The root charges the binomial-tree broadcast time; every node
        (root included) returns when the data has landed everywhere.
        Call exactly once per node per broadcast.
        """
        gen = self._node_gen.get(node, 0)
        self._node_gen[node] = gen + 1
        ev = self._bcast_done.get(gen)
        if ev is None:
            ev = Event(self.env)
            self._bcast_done[gen] = ev
        spans = getattr(self.machine, "spans", None)
        if node == root:
            t0 = self.env.now
            yield self.env.timeout(
                self.machine.mesh.broadcast_time(root, len(self.nodes), nbytes)
            )
            if spans is not None:
                spans.leaf_raw.append((LEAF_MESH_BCAST, node, t0, self.env.now, nbytes))
            ev.succeed()
        else:
            if spans is not None:
                spans.wrap_wait("bcast.wait", node, ev)
            yield ev

    def gather(self, node: int, root: int, nbytes_each: int):
        """Process generator: gather ``nbytes_each`` from every node to root.

        All nodes synchronize; the root additionally charges the gather
        transfer time.
        """
        yield self.barrier()
        if node == root:
            yield self.env.timeout(
                self.machine.mesh.gather_time(root, len(self.nodes), nbytes_each)
            )


@dataclass(frozen=True)
class PhaseMark:
    """A labelled instant in an application run (phase boundary)."""

    name: str
    time: float


@dataclass
class Application:
    """Base runner: spawns per-node processes and collects the trace."""

    machine: Paragon
    fs: InstrumentedPFS
    name: str = "app"
    phase_marks: list[PhaseMark] = field(default_factory=list)

    def __post_init__(self) -> None:
        """Setup hook; the generated __init__ calls it for subclasses
        whether or not they are dataclasses themselves."""

    def mark(self, name: str, at: float | None = None) -> None:
        """Record a phase boundary at the current simulated time (or at
        ``at``, for fluid-mode phases whose interior instants were solved
        in closed form rather than visited by the clock)."""
        when = self.machine.env.now if at is None else at
        self.phase_marks.append(PhaseMark(name, when))
        spans = getattr(self.machine, "spans", None)
        if spans is not None:
            spans.mark(name, -1, when)

    def phase_time(self, name: str) -> float:
        """Time of the first mark with the given name."""
        for m in self.phase_marks:
            if m.name == name:
                return m.time
        raise KeyError(f"no phase mark {name!r}")

    def node_processes(self):  # pragma: no cover - abstract
        """Yield (node, generator) pairs; subclasses implement."""
        raise NotImplementedError

    def run(self) -> Trace:
        """Spawn all node processes, run to completion, return the trace."""
        self.fs.trace.application = self.name
        procs = [
            self.machine.env.process(gen, name=f"{self.name}.n{node}")
            for node, gen in self.node_processes()
        ]
        self.fs.trace.nodes = max(self.fs.trace.nodes, len(procs))
        self.machine.env.run()
        for p in procs:
            if p.is_alive:
                raise RuntimeError(f"process {p.name} never finished (deadlock?)")
            if not p.ok:
                raise p.value
        return self.fs.trace
