"""HTF with the real chemistry in the loop: out-of-core parallel SCF.

The paper's pscf "reads the integral files multiple times (they are too
large to retain in memory)" — this variant does exactly that with real
integrals, miniaturized:

* **pargos phase** — the two-electron integral tensor of a small
  hydrogen chain is computed from scratch (:mod:`repro.science.chemistry`)
  and partitioned into (p, r) pair-records; each node writes its share
  to a private integral file through the simulated file system.
* **pscf phase** — a genuinely *streamed* SCF: each iteration, node 0
  broadcasts the current density matrix; every node re-reads its
  integral records from disk and accumulates partial Coulomb/exchange
  contributions; partials gather to node 0, which assembles the Fock
  matrix, solves the eigenproblem, and checks convergence.

No node ever holds the full integral tensor after the staging phase —
the working set is one record — and the converged energy is verified
against the in-memory :func:`repro.science.chemistry.scf` to 1e-8.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..science.chemistry import (
    Atom,
    Molecule,
    one_electron_integrals,
    sto3g_basis,
    two_electron_integrals,
)
from .base import Application, Collective

__all__ = ["ScienceHTFConfig", "ScienceHartreeFock"]


@dataclass(frozen=True)
class ScienceHTFConfig:
    """A hydrogen chain H_n with per-node integral staging."""

    nodes: int = 4
    n_hydrogens: int = 4
    bond_bohr: float = 1.7
    max_iterations: int = 60
    tolerance: float = 1e-10
    #: Simulated compute seconds per integral record computed/consumed.
    compute_per_record_s: float = 0.05

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if self.n_hydrogens < 2 or self.n_hydrogens % 2:
            raise ValueError("n_hydrogens must be even and >= 2")
        if self.n_hydrogens**2 % self.nodes:
            raise ValueError("nodes must divide n_hydrogens^2 (the record count)")

    def molecule(self) -> Molecule:
        return Molecule(
            atoms=tuple(
                Atom(1, (0.0, 0.0, self.bond_bohr * i))
                for i in range(self.n_hydrogens)
            ),
            n_electrons=self.n_hydrogens,
        )


@dataclass
class ScienceHartreeFock(Application):
    """Runnable out-of-core SCF (needs a content-tracking FS)."""

    config: ScienceHTFConfig = field(default_factory=ScienceHTFConfig)

    def __post_init__(self) -> None:
        self.name = "HTF-science"
        cfg = self.config
        if not self.fs.track_content:
            raise ValueError("ScienceHartreeFock needs track_content=True")
        if cfg.nodes > self.machine.config.compute_nodes:
            raise ValueError("workload larger than machine")
        self.group = Collective(self.machine, list(range(cfg.nodes)))
        self.molecule = cfg.molecule()
        self.basis = sto3g_basis(self.molecule)
        self.n = len(self.basis)
        # One-electron parts are cheap; computed "in core" by node 0.
        self.S, self.T, self.V = one_electron_integrals(self.basis, self.molecule)
        # The full tensor, used to cut per-node records and to verify.
        self._eri = two_electron_integrals(self.basis)
        self.record_bytes = self.n * self.n * 8
        # Published results:
        self.energy: float | None = None
        self.iterations: int = 0
        self.converged: bool = False
        # Iteration plumbing (density broadcast / partial gathers).
        self._density = np.zeros((self.n, self.n))
        self._partials: list[tuple[np.ndarray, np.ndarray]] = []

    # -- record partitioning ------------------------------------------------
    def records_for(self, node: int) -> list[tuple[int, int]]:
        """(p, r) pairs this node owns (round-robin over the pair grid)."""
        pairs = [(p, r) for p in range(self.n) for r in range(self.n)]
        return pairs[node :: self.config.nodes]

    def node_processes(self):
        for node in range(self.config.nodes):
            yield node, self._node_main(node)

    # -- the program ------------------------------------------------------------
    def _node_main(self, node: int):
        cfg = self.config
        fs = self.fs
        mod = self.machine.nodes[node]
        node0 = node == 0
        records = self.records_for(node)

        # ---- pargos: compute + stage this node's integral records -------
        if node0:
            self.mark("pargos")
        fd = yield from fs.open(node, f"/htf-sci/integrals{node:02d}", create=True)
        for (p, r) in records:
            yield from mod.compute(cfg.compute_per_record_s)
            payload = np.ascontiguousarray(self._eri[p, r]).tobytes()
            yield from fs.write(node, fd, len(payload), data=payload)
            yield from fs.flush(node, fd)
        yield from fs.close(node, fd)
        yield self.group.barrier()

        # ---- pscf: streamed SCF ---------------------------------------------
        if node0:
            self.mark("pscf")
        h_core = self.T + self.V
        s_vals, s_vecs = np.linalg.eigh(self.S)
        X = s_vecs @ np.diag(s_vals**-0.5) @ s_vecs.T
        n_occ = self.molecule.n_electrons // 2

        fd = yield from fs.open(node, f"/htf-sci/integrals{node:02d}")
        e_prev = math.inf
        for iteration in range(1, cfg.max_iterations + 1):
            # Node 0 publishes the current density.
            yield from self.group.broadcast(node, 0, self._density.nbytes)
            D = self._density
            # Stream this node's records: rewind, then one pass.
            yield from fs.seek(node, fd, 0)
            J_part = np.zeros((self.n, self.n))
            K_part = np.zeros((self.n, self.n))
            for (p, r) in records:
                count, data = yield from fs.read(
                    node, fd, self.record_bytes, data_out=True
                )
                assert count == self.record_bytes
                M = np.frombuffer(bytes(data)).reshape(self.n, self.n)
                J_part[p, r] = float(np.sum(D * M))
                K_part[p, :] += M @ D[r, :]
                yield from mod.compute(cfg.compute_per_record_s / 10)
            self._partials.append((J_part, K_part))
            yield from self.group.gather(node, 0, 2 * self._density.nbytes)

            if node0:
                J = sum(part[0] for part in self._partials)
                K = sum(part[1] for part in self._partials)
                self._partials.clear()
                F = h_core + J - 0.5 * K
                e_elec = 0.5 * float(np.sum(D * (h_core + F)))
                Fp = X.T @ F @ X
                _, Cp = np.linalg.eigh(Fp)
                C = X @ Cp
                occ = C[:, :n_occ]
                self._density = 2.0 * occ @ occ.T
                self.iterations = iteration
                if abs(e_elec - e_prev) < cfg.tolerance:
                    self.converged = True
                    self.energy = e_elec + self.molecule.nuclear_repulsion()
                e_prev = e_elec
            # Everyone learns whether to stop (tiny control broadcast).
            yield from self.group.broadcast(node, 0, 8)
            if self.converged:
                break
        yield from fs.close(node, fd)
        if node0:
            self.mark("end")

    # -- verification ------------------------------------------------------------
    def reference_energy(self) -> float:
        """In-memory SCF on the same molecule/basis."""
        from ..science.chemistry import scf

        return scf(
            self.molecule,
            basis=self.basis,
            max_iterations=self.config.max_iterations,
            tolerance=self.config.tolerance,
        ).energy
