"""Paper-calibrated and test-scale workload presets.

``paper_*`` presets reproduce the runs behind Tables 1-6 and Figures
2-17 (128-node partition of the Caltech machine).  ``small_*`` presets
shrink node counts and iteration counts for fast tests while preserving
each code's structure (phases, modes, file roles).
"""

from __future__ import annotations

from ..machine.mesh import MeshParams
from ..machine.paragon import Paragon, ParagonConfig
from ..util.units import KB
from .checkpoint import CheckpointConfig
from .escat import EscatConfig
from .htf import HTFConfig
from .render import RenderConfig

__all__ = [
    "paper_machine",
    "small_machine",
    "production_machine",
    "paper_escat",
    "small_escat",
    "production_escat",
    "paper_render",
    "small_render",
    "production_render",
    "paper_htf",
    "small_htf",
    "production_htf",
    "paper_checkpoint",
    "small_checkpoint",
    "production_checkpoint",
    "paper_trace",
    "small_trace",
    "production_trace",
]


def paper_machine(seed: int = 1995) -> Paragon:
    """The 128-node partition + 16 I/O nodes used for all three studies."""
    return Paragon(
        ParagonConfig(
            compute_nodes=128,
            io_nodes=16,
            mesh=MeshParams(width=16, height=8),
            seed=seed,
        )
    )


def small_machine(nodes: int = 8, io_nodes: int = 4, seed: int = 7) -> Paragon:
    """A test-scale machine (structure intact, cheap to simulate)."""
    width = max(2, nodes // 2)
    height = max(2, -(-nodes // width))
    return Paragon(
        ParagonConfig(
            compute_nodes=nodes,
            io_nodes=io_nodes,
            mesh=MeshParams(width=width, height=height),
            seed=seed,
        )
    )


def production_machine(seed: int = 1995) -> Paragon:
    """The ROADMAP north-star scale: 2048 compute nodes + 64 I/O nodes.

    One order of magnitude past the paper's partition — the size the
    batched execution layer exists for.  The mesh is the machine-family
    64x32 grid; the I/O-node count keeps the paper's 32:1
    compute-to-I/O-node ratio.
    """
    return Paragon(
        ParagonConfig(
            compute_nodes=2048,
            io_nodes=64,
            mesh=MeshParams(width=64, height=32),
            seed=seed,
        )
    )


def paper_escat() -> EscatConfig:
    """The Table 1-2 run: 128 nodes, 52 cycles, 2 KB quadrature records."""
    return EscatConfig()


def small_escat(nodes: int = 8) -> EscatConfig:
    """Structure-preserving miniature (4 cycles, small init reads)."""
    return EscatConfig(
        nodes=nodes,
        iterations=4,
        cycle_compute_start_s=2.0,
        cycle_compute_end_s=1.0,
        init_small_reads=30,
        init_medium_reads=3,
        init_large_reads=4,
        init_compute_s=1.0,
        phase3_compute_s=1.0,
        phase4_compute_s=0.5,
    )


def production_escat(nodes: int = 2048) -> EscatConfig:
    """ESCAT scaled to the production partition.

    Per-node structure (52 cycles, 2 KB quadrature records) is the
    paper's; only the partition grows.
    """
    return EscatConfig(nodes=nodes)


def paper_render() -> RenderConfig:
    """The Table 3-4 run: 100 frames of the Mars flyby dataset."""
    return RenderConfig()


def small_render(renderers: int = 7, frames: int = 5) -> RenderConfig:
    """Miniature flyby: few frames, megabyte-scale dataset."""
    return RenderConfig(
        renderers=renderers,
        frames=frames,
        data_files=((4, 3 * 1024 * 1024), (6, 3 * 1024 * 1024 // 2)),
        control_reads=4,
        control_seeks=2,
        render_compute_s=0.3,
        setup_compute_s=0.5,
    )


def production_render(renderers: int = 2047, frames: int = 100) -> RenderConfig:
    """RENDER scaled to the production partition (one control node)."""
    return RenderConfig(renderers=renderers, frames=frames)


def paper_checkpoint() -> CheckpointConfig:
    """Paper-scale checkpointing: 128 nodes dump 512 MB every 5 minutes."""
    return CheckpointConfig()


def small_checkpoint(nodes: int = 8) -> CheckpointConfig:
    """Structure-preserving miniature: 4 epochs of 256 KB/node dumps."""
    return CheckpointConfig(
        nodes=nodes,
        checkpoints=4,
        interval_s=2.0,
        state_bytes=256 * KB,
        chunk_bytes=64 * KB,
    )


def production_checkpoint(nodes: int = 2048) -> CheckpointConfig:
    """Checkpoint/restart at production scale.

    16 MB of state per node in 1 MB chunks: 32 GB per epoch across the
    partition, the regime where the burst-buffer/write-behind tiers and
    the batched flush path carry the load.
    """
    return CheckpointConfig(
        nodes=nodes,
        state_bytes=16 * 1024 * KB,
        chunk_bytes=1024 * KB,
    )


def paper_htf() -> HTFConfig:
    """The Table 5-6 run: 16 atoms, 128 nodes, 6 SCF passes."""
    return HTFConfig()


def production_htf(nodes: int = 2048) -> HTFConfig:
    """HTF scaled to the production partition.

    The record-holder split keeps the paper's proportions (roughly two
    thirds of the partition holds an extra integral record).
    """
    return HTFConfig(nodes=nodes, extra_record_nodes=(nodes * 84) // 128)


def small_htf(nodes: int = 8) -> HTFConfig:
    """Miniature pipeline: few records and passes, tiny aux plan."""
    return HTFConfig(
        nodes=nodes,
        extra_record_nodes=nodes // 2,
        records_base=3,
        scf_passes=2,
        psetup_small_reads=12,
        psetup_medium_reads=8,
        psetup_small_writes=10,
        psetup_medium_writes=9,
        psetup_compute_per_op_s=0.01,
        pargos_input_small_reads=10,
        pargos_input_medium_reads=2,
        pargos_cycle_compute_s=0.5,
        scf_compute_per_record_s=0.1,
        scf_pass_compute_s=0.2,
        aux_opens=8,
        aux_closes=7,
        aux_small_reads=12,
        aux_medium_reads=6,
        aux_large_reads=4,
        aux_small_writes=5,
        aux_medium_writes=6,
        aux_large_writes=2,
        aux_seeks=9,
    )


def paper_trace() -> "TraceReplayConfig":
    """Trace replay has no inherent scale: the ingested trace decides.

    All three presets return the same empty config — ``repro run trace
    --input FILE`` (or an explicit ``source=``) supplies the workload.
    """
    # Imported lazily: apps.trace pulls in core.replay, which imports
    # this module for its machine factories.
    from .trace import TraceReplayConfig

    return TraceReplayConfig()


def small_trace() -> "TraceReplayConfig":
    """See :func:`paper_trace` — the trace itself sets the scale."""
    return paper_trace()


def production_trace() -> "TraceReplayConfig":
    """See :func:`paper_trace` — the trace itself sets the scale."""
    return paper_trace()
