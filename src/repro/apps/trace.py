"""Trace replay as a first-class application.

The fifth "application" of the study is any application at all: an
ingested I/O trace (:mod:`repro.ingest` — Darshan/Recorder-style JSONL
or CSV records, or our own exported traces) replayed through the
simulator with the same machinery the built-in skeletons use.  That
makes external workloads composable with everything an app gets —
machine scales, PPFS policy presets, fault plans, telemetry, burst
buffers, campaign sweeps — while :mod:`repro.core.replay` remains the
lighter standalone what-if tool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.replay import THINK_TIMES, node_streams, prepare_replay_files, replay_node
from ..pablo.trace import Trace
from .base import Application

__all__ = ["TraceReplayConfig", "TraceReplay"]


@dataclass(frozen=True)
class TraceReplayConfig:
    """What to replay and how.

    Parameters
    ----------
    source:
        Path to the trace file — JSONL/CSV schema records or native SDDF
        (dispatched by extension, see :func:`repro.ingest.load_trace`).
    think_time:
        'preserve' (original inter-op gaps), 'none' (back-to-back) or
        'anchor' (original absolute start times — timed replay).
    trace:
        A pre-loaded :class:`Trace`; takes precedence over ``source``
        (spares in-process callers a round-trip through a file).
    """

    source: str = ""
    think_time: str = "preserve"
    trace: Optional[Trace] = None

    def __post_init__(self) -> None:
        if self.think_time not in THINK_TIMES:
            raise ValueError(
                f"think_time must be one of {'/'.join(THINK_TIMES)}, "
                f"got {self.think_time!r}"
            )
    def load(self) -> Trace:
        """The trace to replay (loads ``source`` unless preloaded)."""
        if self.trace is not None:
            return self.trace
        if not self.source:
            raise ValueError(
                "trace replay needs an input: pass source=<path> "
                "(repro run trace --input FILE) or a pre-loaded trace"
            )
        from ..ingest import load_trace

        return load_trace(self.source)


@dataclass
class TraceReplay(Application):
    """Replays an ingested request stream as an SPMD application."""

    config: TraceReplayConfig = field(default_factory=lambda: TraceReplayConfig(trace=Trace()))

    def __post_init__(self) -> None:
        self.name = "trace"
        self.original = self.config.load()
        nodes = max(self.original.nodes, 1)
        if len(self.original.events):
            nodes = max(nodes, int(self.original.events["node"].max()) + 1)
        if nodes > self.machine.config.compute_nodes:
            raise ValueError(
                f"trace uses {nodes} nodes, machine has "
                f"{self.machine.config.compute_nodes} "
                "(pick a larger --scale)"
            )
        # Replay under the original paths when the trace names its files
        # (ingested schema records always do); otherwise the /replay
        # namespace.  Files pre-exist at full extent so reads see data.
        names = self.original.file_names
        self._path_of = (
            (lambda fid: names.get(fid, f"/replay/file{fid}")) if names else None
        )
        prepare_replay_files(self.fs.fs, self.original, self._path_of)
        self.fs.trace.nodes = max(self.fs.trace.nodes, nodes)
        ev = self.original.events
        self._base = float(ev["timestamp"].min()) if len(ev) else 0.0

    def node_processes(self):
        for node, events in node_streams(self.original).items():
            yield node, replay_node(
                self.fs,
                node,
                events,
                self.config.think_time,
                path_of=self._path_of,
                base=self._base,
            )
