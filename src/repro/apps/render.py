"""RENDER — terrain rendering (virtual flyby) skeleton (§4.2, §6).

Reproduces the gateway + renderer structure of Figure 1:

* **Initialization** — the gateway node reads the multi-hundred-megabyte
  terrain dataset from four files using large *asynchronous* reads
  (explicit prefetching: first ~3 MB requests, then ~1.5 MB), M_UNIX
  mode, then broadcasts the data to the renderers, each of which selects
  its subset.
* **Rendering** — per frame: the gateway reads a small view-coordinate
  record from a control file, directs the renderers (who compute),
  collects the rendered 640x512 24-bit image (983,040 bytes), and writes
  it — in the measured runs to a fresh output file per frame (Figure 8's
  staircase), in production to the HiPPi frame buffer.

Default parameters land on Table 3-4: 436 async reads >= 256 KB, 121 tiny
synchronous reads, 100 one-megabyte frame writes plus 200 seven-byte
header/trailer writes (volume exactly 98,305,400 bytes), 106 opens, 101
closes, 4 zero-distance seeks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..pfs.filesystem import SEEK_CUR
from ..util.units import MB
from .base import Application, Collective

__all__ = ["RenderConfig", "Render"]


@dataclass(frozen=True)
class RenderConfig:
    """Workload parameters; defaults = the paper's 100-frame Mars run."""

    #: Renderer count (the gateway is node 0 in addition).
    renderers: int = 127
    frames: int = 100
    #: 640 x 512 x 24-bit color.
    frame_bytes: int = 983040
    #: Header/trailer writes around each frame.
    frame_small_writes: int = 2
    frame_small_bytes: int = 7
    #: Async read plan: (requests, request_bytes) per data file.
    data_files: tuple[tuple[int, int], ...] = (
        (67, 3 * MB),
        (67, 3 * MB),
        (151, 3 * MB // 2),
        (151, 3 * MB // 2),
    )
    #: Prefetch window: async reads outstanding at once.
    prefetch_depth: int = 4
    #: View-coordinate record size.
    view_bytes: int = 70
    #: Control-file reads before the frame loop starts.
    control_reads: int = 21
    #: Zero-distance seeks in the control file (paper Table 3: 4 seeks).
    control_seeks: int = 4
    #: Per-frame render compute on each renderer.
    render_compute_s: float = 2.1
    #: Renderer-to-renderer compute imbalance (fraction).
    compute_jitter: float = 0.05
    #: Gateway setup compute after the dataset broadcast.
    setup_compute_s: float = 15.0
    #: Where frames go: 'disk' (the measured runs) or 'hippi' (production).
    output: str = "disk"

    def __post_init__(self) -> None:
        if self.renderers < 1:
            raise ValueError("renderers must be >= 1")
        if self.frames < 1:
            raise ValueError("frames must be >= 1")
        if self.output not in ("disk", "hippi"):
            raise ValueError(f"output must be disk/hippi, got {self.output!r}")

    @property
    def async_reads(self) -> int:
        """Total async data reads (paper: 436)."""
        return sum(n for n, _ in self.data_files)

    @property
    def dataset_bytes(self) -> int:
        """Total terrain dataset volume (paper: ~880 MB)."""
        return sum(n * size for n, size in self.data_files)

    @property
    def sync_reads(self) -> int:
        """Control-file reads (paper: 121)."""
        return self.control_reads + self.frames

    @property
    def expected_writes(self) -> int:
        """Frame + small writes when output='disk' (paper: 300)."""
        return self.frames * (1 + self.frame_small_writes)


@dataclass
class Render(Application):
    """Runnable RENDER skeleton (gateway = node 0)."""

    config: RenderConfig = field(default_factory=RenderConfig)

    def __post_init__(self) -> None:
        self.name = "RENDER"
        cfg = self.config
        total_nodes = cfg.renderers + 1
        if total_nodes > self.machine.config.compute_nodes:
            raise ValueError(
                f"workload wants {total_nodes} nodes, machine has "
                f"{self.machine.config.compute_nodes}"
            )
        self.group = Collective(self.machine, list(range(total_nodes)))
        self._rng = self.machine.rngs.stream("render.compute")
        # Terrain data and view control files pre-exist.
        for i, (count, size) in enumerate(cfg.data_files):
            self.fs.ensure(f"/render/terrain{i}", size=count * size)
        self.fs.ensure(
            "/render/views", size=(cfg.control_reads + cfg.frames) * cfg.view_bytes
        )
        self.fs.ensure("/render/params", size=4096)

    def node_processes(self):
        yield 0, self._gateway()
        for node in range(1, self.config.renderers + 1):
            yield node, self._renderer(node)

    # -- gateway -------------------------------------------------------------
    def _gateway(self):
        cfg = self.config
        fs = self.fs
        node = 0
        gateway = self.machine.nodes[0]

        self.mark("init")
        # Parameter/config check: opened and closed up front (the 106th
        # open and 101st close of Table 3).
        pfd = yield from fs.open(node, "/render/params")
        yield from fs.close(node, pfd)

        # Initial dataset: large async reads with a bounded prefetch window.
        for i, (count, size) in enumerate(cfg.data_files):
            dfd = yield from fs.open(node, f"/render/terrain{i}")
            window = []
            for _ in range(count):
                handle = yield from fs.aread(node, dfd, size)
                window.append(handle)
                if len(window) >= cfg.prefetch_depth:
                    yield from fs.iowait(node, window.pop(0))
            for handle in window:
                yield from fs.iowait(node, handle)
            # Data files stay open for the run (closed implicitly at exit;
            # Table 3 records only 101 explicit closes).

        # Broadcast the dataset; renderers each keep a subset.
        yield from self.group.broadcast(node, 0, cfg.dataset_bytes)
        yield from gateway.compute(cfg.setup_compute_s)

        # Control file: initial view list + occasional repositioning seeks.
        vfd = yield from fs.open(node, "/render/views")
        for i in range(cfg.control_reads):
            yield from fs.read(node, vfd, cfg.view_bytes)
            if i < cfg.control_seeks:
                yield from fs.seek(node, vfd, 0, SEEK_CUR)

        self.mark("render")
        for frame in range(cfg.frames):
            # View request for this frame.
            yield from fs.read(node, vfd, cfg.view_bytes)
            yield from self.group.broadcast(node, 0, cfg.view_bytes)
            # Collect the rendered image from the group.
            yield from self.group.gather(
                node, 0, cfg.frame_bytes // max(1, cfg.renderers)
            )
            if cfg.output == "disk":
                ofd = yield from fs.open(
                    node, f"/render/frame{frame:04d}", create=True
                )
                yield from fs.write(node, ofd, cfg.frame_small_bytes)
                yield from fs.write(node, ofd, cfg.frame_bytes)
                for _ in range(cfg.frame_small_writes - 1):
                    yield from fs.write(node, ofd, cfg.frame_small_bytes)
                yield from fs.close(node, ofd)
            else:
                yield self.machine.env.process(
                    self.machine.framebuffer.write_frame(cfg.frame_bytes)
                )
        self.mark("end")
        # views and params files are left open at exit (closes = 101).

    # -- renderers ---------------------------------------------------------
    def _renderer(self, node: int):
        cfg = self.config
        mod = self.machine.nodes[node]
        yield from self.group.broadcast(node, 0, 0)  # dataset arrives
        for _ in range(cfg.frames):
            yield from self.group.broadcast(node, 0, 0)  # view coords
            jitter = 1.0 + cfg.compute_jitter * float(self._rng.standard_normal())
            yield from mod.compute(max(0.0, cfg.render_compute_s * jitter))
            yield from self.group.gather(node, 0, 0)
