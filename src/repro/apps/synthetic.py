"""Synthetic I/O kernels — the microbenchmarks §8 warns about.

The paper: "the simple synthetic kernels often used to evaluate new file
system ideas may not be good predictors of potential performance on
full-scale applications."  To make that claim testable, this module
provides exactly such kernels: uniform, unsynchronized, single-file
request generators parameterized by operation mix, request size and node
count — the classic file-system microbenchmark shape, with none of the
real codes' phase structure, synchronization, or seek/write coupling.

The ``bench_synthetic_vs_skeleton`` benchmark runs a kernel matched to
ESCAT's headline numbers (2 KB writes, 128 nodes) and shows it badly
mispredicting both PFS cost and the PPFS policy benefit that the full
skeleton exhibits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..pfs.modes import AccessMode
from .base import Application

__all__ = ["SyntheticConfig", "SyntheticKernel"]


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of a uniform request-stream kernel."""

    nodes: int = 8
    #: Operations per node.
    ops_per_node: int = 50
    request_bytes: int = 2048
    #: 'write', 'read', or 'mixed' (alternating).
    kind: str = "write"
    #: Spatial layout: 'partitioned' (disjoint per-node regions, appended
    #: sequentially) or 'shared-strided' (node-interleaved records).
    layout: str = "partitioned"
    #: Think time between a node's operations.
    think_s: float = 0.1
    mode: AccessMode = AccessMode.M_UNIX

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if self.ops_per_node < 1:
            raise ValueError("ops_per_node must be >= 1")
        if self.request_bytes < 1:
            raise ValueError("request_bytes must be >= 1")
        if self.kind not in ("write", "read", "mixed"):
            raise ValueError(f"kind must be write/read/mixed, got {self.kind!r}")
        if self.layout not in ("partitioned", "shared-strided"):
            raise ValueError(f"bad layout {self.layout!r}")
        if self.think_s < 0:
            raise ValueError("think_s must be >= 0")

    @property
    def total_bytes(self) -> int:
        return self.nodes * self.ops_per_node * self.request_bytes


@dataclass
class SyntheticKernel(Application):
    """Runnable uniform-stream kernel."""

    config: SyntheticConfig = field(default_factory=SyntheticConfig)

    def __post_init__(self) -> None:
        self.name = "SYNTHETIC"
        cfg = self.config
        if cfg.nodes > self.machine.config.compute_nodes:
            raise ValueError("workload larger than machine")
        self.fs.ensure("/synthetic/data", size=cfg.total_bytes)

    def node_processes(self):
        for node in range(self.config.nodes):
            yield node, self._node_main(node)

    def _offset(self, node: int, op_index: int) -> int:
        cfg = self.config
        if cfg.layout == "partitioned":
            region = cfg.ops_per_node * cfg.request_bytes
            return node * region + op_index * cfg.request_bytes
        # shared-strided: groups of N records in node order.
        return (op_index * cfg.nodes + node) * cfg.request_bytes

    def _node_main(self, node: int):
        cfg = self.config
        fs = self.fs
        mod = self.machine.nodes[node]
        fd = yield from fs.open(node, "/synthetic/data", cfg.mode)
        for k in range(cfg.ops_per_node):
            if cfg.think_s:
                yield from mod.compute(cfg.think_s)
            offset = self._offset(node, k)
            if fs.tell(node, fd) != offset:
                yield from fs.seek(node, fd, offset)
            do_read = cfg.kind == "read" or (cfg.kind == "mixed" and k % 2)
            if do_read:
                yield from fs.read(node, fd, cfg.request_bytes)
            else:
                yield from fs.write(node, fd, cfg.request_bytes)
        yield from fs.close(node, fd)
