"""ESCAT — electron scattering (Schwinger multichannel) skeleton (§4.1, §5).

Reproduces the four I/O phases of the production code on the Paragon:

1. **Compulsory input** — node 0 reads the problem definition and initial
   matrices from three files (ids 9-11) with many small and a few larger
   requests, then broadcasts to the partition.
2. **Quadrature generation** — compute/write cycles, synchronized across
   nodes; each cycle every node seeks to a calculated offset (dependent
   on node number, iteration and the PFS stripe size) in each of two
   staging files (ids 7-8, M_UNIX mode) and writes one 2 KB quadrature
   record.  A node's records are laid out contiguously so it can reread
   its own data with one large access.  Inter-cycle compute time shrinks
   from ~160 s to ~80 s across the phase (paper Figure 4).
3. **Reload** — the staging files are switched to M_RECORD with a
   record size of two stripe units (128 KB) and every node rereads its
   own region (including the layout holes — why reread volume exceeds
   written volume).
4. **Output** — results are gathered to node 0 and written to three
   output files (ids 3-5).

Default parameters land on the paper's Table 1-2 counts: 13,330 writes
(all < 4 KB), 560 reads (bimodal), 262 opens/closes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..pfs.modes import AccessMode
from ..sim import fluid as fl
from ..util.units import STRIPE_UNIT
from .base import Application, Collective

__all__ = ["EscatConfig", "Escat"]


@dataclass(frozen=True)
class EscatConfig:
    """Workload parameters; defaults = the paper's 128-node test dataset."""

    nodes: int = 128
    #: Quadrature compute/write cycles per node.
    iterations: int = 52
    #: Bytes per quadrature record (251 doubles).
    record_bytes: int = 2008
    #: Per-node region in each staging file: 2 stripe units, also the
    #: M_RECORD record size used for the phase-3 reload.
    region_bytes: int = 2 * STRIPE_UNIT
    #: Inter-cycle compute time at phase start / end (paper: ~160 -> ~80 s).
    cycle_compute_start_s: float = 135.0
    cycle_compute_end_s: float = 52.0
    #: Compute jitter (fraction of cycle time) across nodes.
    compute_jitter: float = 0.02
    #: Initial input: (count, size) request classes per the bimodal mix.
    init_small_reads: int = 297
    init_small_bytes: int = 1171
    init_medium_reads: int = 3
    init_medium_bytes: int = 20480
    init_large_reads: int = 4
    init_large_bytes: int = 65536
    #: Final output: writes per output file and their size.
    output_writes_per_file: int = 6
    output_write_bytes: int = 1477
    #: Initialization compute before phase 2 starts.
    init_compute_s: float = 120.0
    #: Energy-dependent compute before the phase-3 reload.
    phase3_compute_s: float = 180.0
    #: Output assembly compute before phase 4 writes.
    phase4_compute_s: float = 30.0
    #: Restart mode: skip the quadrature-generation phase and reuse the
    #: staging files from a previous run — the parametric-study workflow
    #: §2 describes ("users often use computation checkpoints as a basis
    #: for parametric studies ... and restarting the computation").
    restart: bool = False

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.iterations * self.record_bytes > self.region_bytes:
            raise ValueError(
                "per-node records overflow the staging region: "
                f"{self.iterations} x {self.record_bytes} > {self.region_bytes}"
            )

    @property
    def expected_writes(self) -> int:
        """Staging + output writes (paper: 13,330)."""
        return self.nodes * self.iterations * 2 + 3 * self.output_writes_per_file

    @property
    def expected_reads(self) -> int:
        """Initial + reload reads (paper: 560)."""
        return (
            self.init_small_reads
            + self.init_medium_reads
            + self.init_large_reads
            + 2 * self.nodes
        )

    @property
    def expected_opens(self) -> int:
        """3 input + 2 staging x nodes + 3 output (paper: 262)."""
        return 3 + 2 * self.nodes + 3


#: Paper file ids (Figure 5): output 3-5, staging 7-8, input 9-11.
OUTPUT_IDS = (3, 4, 5)
STAGING_IDS = (7, 8)
INPUT_IDS = (9, 10, 11)


@dataclass
class Escat(Application):
    """Runnable ESCAT skeleton."""

    config: EscatConfig = field(default_factory=EscatConfig)

    def __post_init__(self) -> None:
        self.name = "ESCAT"
        cfg = self.config
        if cfg.nodes > self.machine.config.compute_nodes:
            raise ValueError(
                f"workload wants {cfg.nodes} nodes, machine has "
                f"{self.machine.config.compute_nodes}"
            )
        self.group = Collective(self.machine, list(range(cfg.nodes)))
        self._rng = self.machine.rngs.stream("escat.compute")
        # Input files pre-exist (staged data); staging files pre-exist as
        # scratch from prior runs (why their opens are cheap non-creates).
        total_init = (
            cfg.init_small_reads * cfg.init_small_bytes
            + cfg.init_medium_reads * cfg.init_medium_bytes
            + cfg.init_large_reads * cfg.init_large_bytes
        )
        for i, fid in enumerate(INPUT_IDS):
            self.fs.ensure(f"/escat/input{i}", file_id=fid, size=total_init // 3 + cfg.init_large_bytes)
        for i, fid in enumerate(STAGING_IDS):
            self.fs.ensure(f"/escat/quad{i}", file_id=fid, size=cfg.nodes * cfg.region_bytes)

    # -- per-node program ---------------------------------------------------
    def node_processes(self):
        for node in range(self.config.nodes):
            yield node, self._node_main(node)

    def _node_main(self, node: int):
        cfg = self.config
        fs = self.fs
        node0 = node == 0

        # ---- phase 1: compulsory input + broadcast -----------------------
        if node0:
            self.mark("phase1")
            total = 0
            for i in range(3):
                fd = yield from fs.open(node, f"/escat/input{i}")
                plan = self._init_read_plan(i)
                for size in plan:
                    got = yield from fs.read(node, fd, size)
                    total += got
                yield from fs.close(node, fd)
            yield from self.group.broadcast(node, 0, total)
        else:
            yield from self.group.broadcast(node, 0, 0)

        # ---- phase 2: synchronized compute/write cycles ---------------------
        # (skipped entirely on restart: the checkpoint is reused.)
        if node0:
            self.mark("phase2")
        fds = []
        for i in range(2):
            fd = yield from fs.open(node, f"/escat/quad{i}", AccessMode.M_UNIX)
            fds.append(fd)
        node_mod = self.machine.nodes[node]
        if not cfg.restart:
            # The iteration loop is regular (synchronized compute + two
            # seek/write pairs per cycle): offer it as one fluid phase.
            servicer = getattr(getattr(fs, "fs", fs), "fluid", None)
            done = None
            if servicer is not None:

                def build_plan():
                    ops = []
                    for it in range(cfg.iterations):
                        frac = it / max(1, cfg.iterations - 1)
                        base = (
                            cfg.cycle_compute_start_s
                            + (cfg.cycle_compute_end_s - cfg.cycle_compute_start_s)
                            * frac
                        )
                        jitter = 1.0 + cfg.compute_jitter * float(
                            self._rng.standard_normal()
                        )
                        ops.append(fl.compute(max(0.0, base * jitter)))
                        ops.append(fl.barrier())
                        for fd in fds:
                            offset = node * cfg.region_bytes + it * cfg.record_bytes
                            ops.append(fl.seek(fd, offset))
                            ops.append(fl.write(fd, cfg.record_bytes))
                    return ops

                done = servicer.enroll(
                    "escat.phase2",
                    cfg.nodes,
                    node,
                    fs,
                    probe=[
                        op
                        for fd in fds
                        for op in (fl.seek(fd, 0), fl.write(fd, cfg.record_bytes))
                    ],
                    build=build_plan,
                    mod=node_mod,
                )
            if done is not None:
                yield done
            else:
                for it in range(cfg.iterations):
                    frac = it / max(1, cfg.iterations - 1)
                    base = (
                        cfg.cycle_compute_start_s
                        + (cfg.cycle_compute_end_s - cfg.cycle_compute_start_s)
                        * frac
                    )
                    jitter = 1.0 + cfg.compute_jitter * float(
                        self._rng.standard_normal()
                    )
                    yield from node_mod.compute(max(0.0, base * jitter))
                    yield self.group.barrier()  # writes are synchronized (Figure 4)
                    for fd in fds:
                        offset = node * cfg.region_bytes + it * cfg.record_bytes
                        yield from fs.seek(node, fd, offset)
                        yield from fs.write(node, fd, cfg.record_bytes)

        # ---- phase 3: energy-dependent calc + reload ------------------------
        if node0:
            self.mark("phase3")
        yield from node_mod.compute(cfg.phase3_compute_s)
        yield self.group.barrier()
        for fd in fds:
            yield from fs.setiomode(
                node, fd, AccessMode.M_RECORD, record_size=cfg.region_bytes
            )
        for fd in fds:
            got = yield from fs.read(node, fd, cfg.region_bytes)
            assert got == cfg.region_bytes
        for fd in fds:
            yield from fs.close(node, fd)

        # ---- phase 4: gather + output by node 0 ---------------------------
        yield from self.group.gather(node, 0, cfg.output_write_bytes)
        if node0:
            self.mark("phase4")
            yield from node_mod.compute(cfg.phase4_compute_s)
            for i, fid in enumerate(OUTPUT_IDS):
                fd = yield from fs.open(
                    node, f"/escat/out{i}", create=True, file_id=fid
                )
                for _ in range(cfg.output_writes_per_file):
                    yield from fs.write(node, fd, cfg.output_write_bytes)
                yield from fs.close(node, fd)
            self.mark("end")

    def _init_read_plan(self, file_index: int) -> list[int]:
        """Request sizes for one input file: interleaved small reads with
        the occasional medium/large request (Figure 3's irregularity)."""
        cfg = self.config
        smalls = [cfg.init_small_bytes] * (cfg.init_small_reads // 3)
        if file_index == 0:
            smalls += [cfg.init_small_bytes] * (cfg.init_small_reads % 3)
        mediums = [cfg.init_medium_bytes] * (1 if file_index < cfg.init_medium_reads else 0)
        larges = [cfg.init_large_bytes] * (2 if file_index == 0 else 1)
        # Interleave: a large read up front (header block), mediums midway.
        plan = larges[:1] + smalls[: len(smalls) // 2] + mediums + smalls[len(smalls) // 2 :] + larges[1:]
        return plan
