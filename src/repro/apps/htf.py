"""HTF — Hartree-Fock quantum chemistry skeleton (§4.3, §7).

Three programs forming a logical pipeline, each traced separately as in
the paper's Tables 5-6 and Figures 9-17:

* **psetup** (initialization) — a single node reads the small initial
  data, transforms it (compute between requests), and writes the files
  the later phases consume.  Small, balanced read/write mix.
* **pargos** (integral calculation) — every node creates a private
  integral file and alternates integral computation with ~80 KB record
  writes, flushing after each (Fortran forflush); write-intensive, and
  the 128 simultaneous creates make opens the dominant I/O cost.
* **pscf** (self-consistent field) — every node rereads its integral
  file once per SCF pass (the files are too large to keep in memory),
  rewinding (seek to 0, ~5.4 MB distance) between passes; heavily
  read-intensive.  Node 0 additionally works a set of auxiliary files
  (basis/geometry/checkpoint/results).

Default parameters land on Table 5-6: pargos 8,532 integral-record
writes of 81,920 bytes (84 nodes write 67 records, 44 write 66), pscf
6 x 8,532 = 51,192 record reads plus node-0 extras totalling 51,499
reads, 813 seeks whose cumulative distance is ~3.5 GB.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine.paragon import Paragon
from ..pablo.capture import InstrumentedPFS
from ..pablo.trace import Trace
from ..pfs.filesystem import PFS
from ..sim import fluid as fl
from .base import Application, Collective

__all__ = ["HTFConfig", "Psetup", "Pargos", "Pscf", "HartreeFock", "HTFResult"]


@dataclass(frozen=True)
class HTFConfig:
    """Workload parameters; defaults = the paper's 16-atom, 128-node run."""

    nodes: int = 128
    # -- psetup (single-node) -------------------------------------------------
    psetup_small_reads: int = 151
    psetup_small_read_bytes: int = 1100
    psetup_medium_reads: int = 220
    psetup_medium_read_bytes: int = 15256
    psetup_small_writes: int = 218
    psetup_small_write_bytes: int = 1050
    psetup_medium_writes: int = 234
    psetup_medium_write_bytes: int = 15026
    psetup_compute_per_op_s: float = 0.19
    # -- pargos ---------------------------------------------------------------
    integral_record_bytes: int = 81920
    #: Nodes writing one extra record (84 x 67 + 44 x 66 = 8,532).
    extra_record_nodes: int = 84
    records_base: int = 66
    pargos_input_small_reads: int = 143
    pargos_input_small_bytes: int = 150
    pargos_input_medium_reads: int = 2
    pargos_input_medium_bytes: int = 6400
    pargos_cycle_compute_s: float = 16.5
    pargos_compute_jitter: float = 0.01
    # -- pscf ------------------------------------------------------------------
    scf_passes: int = 6
    scf_compute_per_record_s: float = 0.5
    scf_pass_compute_s: float = 90.0
    #: Node-0 auxiliary-file op counts (to Table 5/6 totals).
    aux_opens: int = 29
    aux_closes: int = 28
    aux_small_reads: int = 165
    aux_small_read_bytes: int = 800
    aux_medium_reads: int = 109
    aux_medium_read_bytes: int = 15000
    aux_large_reads: int = 33
    aux_large_read_bytes: int = 105000
    aux_small_writes: int = 43
    aux_small_write_bytes: int = 1200
    aux_medium_writes: int = 158
    aux_medium_write_bytes: int = 20000
    aux_large_writes: int = 6
    aux_large_write_bytes: int = 110000
    aux_seeks: int = 173

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if not 0 <= self.extra_record_nodes <= self.nodes:
            raise ValueError("extra_record_nodes outside 0..nodes")
        if self.scf_passes < 1:
            raise ValueError("scf_passes must be >= 1")

    def records_for(self, node: int) -> int:
        """Integral records written by ``node``."""
        return self.records_base + (1 if node < self.extra_record_nodes else 0)

    @property
    def total_records(self) -> int:
        """All integral records (paper: 8,532)."""
        return self.nodes * self.records_base + self.extra_record_nodes

    @property
    def expected_pscf_reads(self) -> int:
        """SCF record reads + node-0 extras (paper: 51,499)."""
        return (
            self.scf_passes * self.total_records
            + self.aux_small_reads
            + self.aux_medium_reads
            + self.aux_large_reads
        )


def _integral_path(node: int) -> str:
    return f"/htf/integrals{node:03d}"


@dataclass
class Psetup(Application):
    """HTF initialization program (runs on node 0)."""

    config: HTFConfig = field(default_factory=HTFConfig)

    def __post_init__(self) -> None:
        self.name = "HTF-psetup"
        cfg = self.config
        self.fs.ensure(
            "/htf/input",
            size=cfg.psetup_small_reads * cfg.psetup_small_read_bytes
            + cfg.psetup_medium_reads * cfg.psetup_medium_read_bytes,
        )

    def node_processes(self):
        yield 0, self._main()

    def _main(self):
        cfg = self.config
        fs = self.fs
        node = 0
        mod = self.machine.nodes[node]
        self.mark("start")
        in_fd = yield from fs.open(node, "/htf/input", cold=True)
        out_fds = []
        for i in range(3):
            fd = yield from fs.open(node, f"/htf/setup{i}", create=True, cold=True)
            out_fds.append(fd)

        # Interleave: read a record, transform, write the result(s).
        reads = [cfg.psetup_small_read_bytes] * cfg.psetup_small_reads + [
            cfg.psetup_medium_read_bytes
        ] * cfg.psetup_medium_reads
        writes = [cfg.psetup_small_write_bytes] * cfg.psetup_small_writes + [
            cfg.psetup_medium_write_bytes
        ] * cfg.psetup_medium_writes
        # Deterministic interleave preserving each list's internal order.
        rng = self.machine.rngs.stream("htf.psetup")
        order = rng.permutation(len(reads)).tolist()
        reads = [reads[i] for i in order]
        order_w = rng.permutation(len(writes)).tolist()
        writes = [writes[i] for i in order_w]

        wi = 0
        for ri, size in enumerate(reads):
            yield from fs.read(node, in_fd, size)
            yield from mod.compute(cfg.psetup_compute_per_op_s)
            # ~1.2 writes per read on average.
            quota = (ri + 1) * len(writes) // len(reads)
            while wi < quota:
                fd = out_fds[wi % 3]
                yield from fs.write(node, fd, writes[wi])
                wi += 1
            if ri == len(reads) // 2:
                # Re-scan the input header midway (the 2 seeks of Table 5).
                yield from fs.seek(node, in_fd, 0)
                yield from fs.seek(node, in_fd, 0)
        while wi < len(writes):
            yield from fs.write(node, out_fds[wi % 3], writes[wi])
            wi += 1
        yield from fs.close(node, in_fd)
        yield from fs.close(node, out_fds[0])
        yield from fs.close(node, out_fds[1])
        # Third setup file left open at exit (Table 5: 4 opens, 3 closes).
        self.mark("end")


@dataclass
class Pargos(Application):
    """HTF integral-calculation program (all nodes)."""

    config: HTFConfig = field(default_factory=HTFConfig)

    def __post_init__(self) -> None:
        self.name = "HTF-pargos"
        cfg = self.config
        if cfg.nodes > self.machine.config.compute_nodes:
            raise ValueError("workload larger than machine")
        self.group = Collective(self.machine, list(range(cfg.nodes)))
        self._rng = self.machine.rngs.stream("htf.pargos")
        self.fs.ensure(
            "/htf/setup0",
            size=cfg.pargos_input_small_reads * cfg.pargos_input_small_bytes
            + cfg.pargos_input_medium_reads * cfg.pargos_input_medium_bytes,
        )

    def node_processes(self):
        for node in range(self.config.nodes):
            yield node, self._node_main(node)

    def _node_main(self, node: int):
        cfg = self.config
        fs = self.fs
        mod = self.machine.nodes[node]
        node0 = node == 0

        # Node 0 reads the basis/geometry produced by psetup, broadcasts.
        if node0:
            self.mark("start")
            in_fd = yield from fs.open(node, "/htf/setup0")
            for _ in range(cfg.pargos_input_small_reads):
                yield from fs.read(node, in_fd, cfg.pargos_input_small_bytes)
            for _ in range(cfg.pargos_input_medium_reads):
                yield from fs.read(node, in_fd, cfg.pargos_input_medium_bytes)
            # Input file left open at exit (Table 5: 130 opens, 129 closes).
            yield from self.group.broadcast(node, 0, 64 * 1024)
        else:
            yield from self.group.broadcast(node, 0, 0)

        # Every node creates its integral file — the contended creates
        # that dominate this phase's I/O time.
        fd = yield from fs.open(node, _integral_path(node), create=True)
        if node0:
            self.mark("integrals")
            cfd = yield from fs.open(node, "/htf/pargos.log", create=True)
            yield from fs.write(node, cfd, 512)
            yield from fs.write(node, cfd, 512)
            yield from fs.write(node, cfd, 16384)
            for _ in range(3):
                yield from fs.flush(node, cfd)
            yield from fs.close(node, cfd)

        # The record loop is regular (compute/write/flush per record on a
        # private file): offer it to the fluid servicer as one phase.
        servicer = getattr(getattr(fs, "fs", fs), "fluid", None)
        done = None
        if servicer is not None:

            def build_plan() -> list:
                ops = []
                for _ in range(cfg.records_for(node)):
                    jitter = 1.0 + cfg.pargos_compute_jitter * float(
                        self._rng.standard_normal()
                    )
                    ops.append(
                        fl.compute(max(0.0, cfg.pargos_cycle_compute_s * jitter))
                    )
                    ops.append(fl.write(fd, cfg.integral_record_bytes))
                    ops.append(fl.flush(fd))
                ops.append(fl.flush(fd))  # final forflush before lsize
                return ops

            done = servicer.enroll(
                "pargos",
                cfg.nodes,
                node,
                fs,
                probe=[fl.write(fd, cfg.integral_record_bytes), fl.flush(fd)],
                build=build_plan,
                mod=mod,
            )
        if done is not None:
            yield done
        else:
            for _ in range(cfg.records_for(node)):
                jitter = 1.0 + cfg.pargos_compute_jitter * float(
                    self._rng.standard_normal()
                )
                yield from mod.compute(max(0.0, cfg.pargos_cycle_compute_s * jitter))
                yield from fs.write(node, fd, cfg.integral_record_bytes)
                yield from fs.flush(node, fd)
            yield from fs.flush(node, fd)  # final forflush before lsize
        yield from fs.lsize(node, fd)
        yield from fs.close(node, fd)
        if node0:
            self.mark("end")


@dataclass
class Pscf(Application):
    """HTF self-consistent-field program (all nodes)."""

    config: HTFConfig = field(default_factory=HTFConfig)

    def __post_init__(self) -> None:
        self.name = "HTF-pscf"
        cfg = self.config
        if cfg.nodes > self.machine.config.compute_nodes:
            raise ValueError("workload larger than machine")
        self.group = Collective(self.machine, list(range(cfg.nodes)))
        self._rng = self.machine.rngs.stream("htf.pscf")
        # Integral files must exist (pargos output) — ensure for
        # standalone runs; sizes follow the per-node record counts.
        for node in range(cfg.nodes):
            self.fs.ensure(
                _integral_path(node),
                size=cfg.records_for(node) * cfg.integral_record_bytes,
            )
        for i in range(cfg.aux_opens):
            self.fs.ensure(f"/htf/aux{i:02d}", size=2 * 1024 * 1024)

    def node_processes(self):
        for node in range(self.config.nodes):
            yield node, self._node_main(node)

    # Auxiliary op schedule: node 0 interleaves aux-file work at pass
    # boundaries; slices partition the Table 5/6 counts evenly.
    def _aux_slice(self, counts: dict[str, int], slice_idx: int, slices: int):
        def share(total: int) -> int:
            return total * (slice_idx + 1) // slices - total * slice_idx // slices

        cfg = self.config
        fs = self.fs
        node = 0
        n_open = share(cfg.aux_opens)
        n_close = share(cfg.aux_closes)
        for _ in range(n_open):
            idx = counts["opened"]
            fd = yield from fs.open(node, f"/htf/aux{idx:02d}")
            counts["fds"].append(fd)
            counts["opened"] += 1
        for _ in range(share(cfg.aux_small_reads)):
            yield from fs.read(node, counts["fds"][0], cfg.aux_small_read_bytes)
        for _ in range(share(cfg.aux_medium_reads)):
            yield from fs.read(node, counts["fds"][0], cfg.aux_medium_read_bytes)
        for _ in range(share(cfg.aux_large_reads)):
            yield from fs.read(node, counts["fds"][0], cfg.aux_large_read_bytes)
        for _ in range(share(cfg.aux_seeks)):
            yield from fs.seek(node, counts["fds"][0], 0)
        for _ in range(share(cfg.aux_small_writes)):
            yield from fs.write(node, counts["fds"][-1], cfg.aux_small_write_bytes)
        for _ in range(share(cfg.aux_medium_writes)):
            yield from fs.write(node, counts["fds"][-1], cfg.aux_medium_write_bytes)
        for _ in range(share(cfg.aux_large_writes)):
            yield from fs.write(node, counts["fds"][-1], cfg.aux_large_write_bytes)
        for _ in range(n_close):
            fd = counts["fds"].pop(0)
            yield from fs.close(node, fd)

    def _node_main(self, node: int):
        cfg = self.config
        fs = self.fs
        mod = self.machine.nodes[node]
        node0 = node == 0
        slices = cfg.scf_passes + 2  # initial + per-pass + final
        aux_state = {"opened": 0, "fds": []}

        if node0:
            self.mark("start")
            yield from self._aux_slice(aux_state, 0, slices)
        fd = yield from fs.open(node, _integral_path(node))
        records = cfg.records_for(node)
        # Each SCF pass is a regular read sweep — one fluid cohort per
        # pass.  Node 0's aux-file slices stay discrete between passes;
        # they queue behind the solved pass via the absorbed I/O-node
        # horizon.
        servicer = getattr(getattr(fs, "fs", fs), "fluid", None)
        for scf_pass in range(cfg.scf_passes):
            done = None
            if servicer is not None:

                def build_plan(scf_pass=scf_pass):
                    ops = []
                    if scf_pass > 0:
                        ops.append(fl.seek(fd, 0))  # rewind: ~5.4 MB distance
                    for _ in range(records):
                        ops.append(fl.read(fd, cfg.integral_record_bytes))
                        jitter = 1.0 + 0.03 * float(self._rng.standard_normal())
                        ops.append(
                            fl.compute(
                                max(0.0, cfg.scf_compute_per_record_s * jitter)
                            )
                        )
                    ops.append(fl.compute(cfg.scf_pass_compute_s))
                    return ops

                done = servicer.enroll(
                    ("pscf", scf_pass),
                    cfg.nodes,
                    node,
                    fs,
                    probe=[fl.seek(fd, 0), fl.read(fd, cfg.integral_record_bytes)],
                    build=build_plan,
                    mod=mod,
                )
            if done is not None:
                yield done
            else:
                if scf_pass > 0:
                    yield from fs.seek(node, fd, 0)  # rewind: ~5.4 MB distance
                for _ in range(records):
                    yield from fs.read(node, fd, cfg.integral_record_bytes)
                    jitter = 1.0 + 0.03 * float(self._rng.standard_normal())
                    yield from mod.compute(
                        max(0.0, cfg.scf_compute_per_record_s * jitter)
                    )
                yield from mod.compute(cfg.scf_pass_compute_s)
            if node0:
                yield from self._aux_slice(aux_state, scf_pass + 1, slices)
        yield from fs.close(node, fd)
        if node0:
            yield from self._aux_slice(aux_state, slices - 1, slices)
            self.mark("end")


@dataclass
class HTFResult:
    """Traces of the three pipeline programs."""

    psetup: Trace
    pargos: Trace
    pscf: Trace

    def programs(self) -> dict[str, Trace]:
        return {"psetup": self.psetup, "pargos": self.pargos, "pscf": self.pscf}


class HartreeFock:
    """Runs the three-program pipeline on one machine, tracing each."""

    def __init__(self, machine: Paragon, pfs: PFS, config: HTFConfig | None = None):
        self.machine = machine
        self.pfs = pfs
        self.config = config or HTFConfig()

    def run(self) -> HTFResult:
        """Execute psetup, pargos, pscf sequentially; three traces."""
        traces = []
        for cls in (Psetup, Pargos, Pscf):
            fs = InstrumentedPFS(self.pfs)
            app = cls(machine=self.machine, fs=fs, config=self.config)
            traces.append(app.run())
        return HTFResult(*traces)
