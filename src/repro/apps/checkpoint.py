"""CHECKPOINT — synchronized checkpoint/restart workload family.

The paper's three applications are read/compute/write-burst codes; modern
parallel I/O is dominated by a fourth shape the study predates:
*synchronized checkpointing*.  N compute nodes alternate a compute
interval with a barrier-coordinated dump of per-node state into rotating
checkpoint files — short, huge, fully-aligned write bursts, the worst
case for a striped RAID-3 back end and the motivating traffic for the
host-side burst-buffer tier (:mod:`repro.machine.burstbuffer`).

The skeleton is parameterized along the axes the checkpointing
literature sweeps:

* checkpoint **interval** (compute seconds between dumps),
* per-node **state size**, with linear growth per epoch (adaptive-mesh
  codes) and a deterministic per-node spread (load imbalance),
* an optional **compression ratio** applied before the wire, plus a
  compute cost per raw MB for the compressor,
* **rotating files** (double-buffered checkpoints, so a failure during
  epoch *k* never corrupts epoch *k-1*), and
* **restart-after-fault**: a write failure surfacing into the epoch
  (e.g. retry budget exhausted during a :class:`~repro.faults.NodeOutage`)
  rolls every node back to the last *complete* checkpoint — the failed
  epoch's files are re-read and the interval recomputed, with the lost
  work accounted in :class:`CheckpointStats`.

Checkpoint files open in M_ASYNC: writers own disjoint regions, so the
mode's missing atomicity is exactly right and the writes escape the
shared-file write-token serialization M_UNIX would impose (§5.2's
N-to-1 penalty).  Files are marked burst-tier; on a machine with a
burst buffer the writes absorb into the log, otherwise they go straight
to the RAID fan-out — the A/B the bench suite measures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..pfs.errors import PFSError
from ..pfs.modes import AccessMode
from ..sim import fluid as fl
from ..util.units import KB, MB
from .base import Application, Collective

__all__ = ["CheckpointConfig", "CheckpointStats", "Checkpoint"]


@dataclass(frozen=True)
class CheckpointConfig:
    """Workload parameters; defaults = a paper-scale 128-node partition
    dumping 512 MB (4 MB/node) every five simulated minutes."""

    nodes: int = 128
    #: Checkpoints to complete (epochs).
    checkpoints: int = 8
    #: Compute seconds between checkpoints.
    interval_s: float = 300.0
    #: Compute jitter (fraction of the interval) across nodes.
    compute_jitter: float = 0.02
    #: Per-node state at epoch 0.
    state_bytes: int = 4 * MB
    #: Linear state growth per epoch (0.1 = +10% of epoch-0 state each epoch).
    state_growth: float = 0.0
    #: Deterministic per-node size spread: node scales run linearly over
    #: ``[1 - spread, 1 + spread]`` across the partition (no RNG draws, so
    #: the trace stays byte-reproducible under any node interleaving).
    state_spread: float = 0.0
    #: Write/read granularity for state dumps and restores.
    chunk_bytes: int = 256 * KB
    #: Wire bytes = ceil(raw * ratio); 1.0 = no compression.
    compression_ratio: float = 1.0
    #: Compressor compute cost per raw MB (0 = free compression).
    compress_cost_s_per_mb: float = 0.0
    #: Rotating checkpoint files (2 = classic double buffering).
    checkpoint_files: int = 2
    #: Begin by restoring epoch-0 state from checkpoint file 0.
    restart: bool = False
    #: Abort if one epoch fails this many times (guards runaway fault plans).
    max_restarts: int = 8

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if self.checkpoints < 1:
            raise ValueError("checkpoints must be >= 1")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be > 0")
        if self.state_bytes < 1:
            raise ValueError("state_bytes must be >= 1")
        if self.state_growth < 0:
            raise ValueError("state_growth must be >= 0")
        if not 0 <= self.state_spread < 1:
            raise ValueError("state_spread must be in [0, 1)")
        if self.chunk_bytes < 1:
            raise ValueError("chunk_bytes must be >= 1")
        if not 0 < self.compression_ratio <= 1:
            raise ValueError("compression_ratio must be in (0, 1]")
        if self.compress_cost_s_per_mb < 0:
            raise ValueError("compress_cost_s_per_mb must be >= 0")
        if self.checkpoint_files < 1:
            raise ValueError("checkpoint_files must be >= 1")
        if self.max_restarts < 1:
            raise ValueError("max_restarts must be >= 1")

    # -- state sizing ---------------------------------------------------------
    def node_scale(self, node: int) -> float:
        """Deterministic per-node size factor in [1-spread, 1+spread]."""
        if self.nodes == 1 or self.state_spread == 0.0:
            return 1.0
        return 1.0 + self.state_spread * (2.0 * node / (self.nodes - 1) - 1.0)

    def raw_bytes(self, epoch: int, node: int) -> int:
        """Uncompressed per-node state at a given epoch."""
        grown = self.state_bytes * (1.0 + self.state_growth * epoch)
        return max(1, math.ceil(grown * self.node_scale(node)))

    def wire_bytes(self, epoch: int, node: int) -> int:
        """Bytes actually written after compression."""
        return max(1, math.ceil(self.raw_bytes(epoch, node) * self.compression_ratio))

    @property
    def region_bytes(self) -> int:
        """Per-node file region: the largest possible wire size, rounded
        up to the chunk granularity (uniform regions keep offsets simple)."""
        last = self.checkpoints - 1
        biggest = max(
            self.wire_bytes(last, node) for node in (0, self.nodes - 1)
        )
        chunks = (biggest + self.chunk_bytes - 1) // self.chunk_bytes
        return chunks * self.chunk_bytes

    # -- expectations (fault-free run) ----------------------------------------
    @property
    def expected_writes(self) -> int:
        c = self.chunk_bytes
        return sum(
            (self.wire_bytes(e, n) + c - 1) // c
            for e in range(self.checkpoints)
            for n in range(self.nodes)
        )

    @property
    def expected_checkpoint_bytes(self) -> int:
        return sum(
            self.wire_bytes(e, n)
            for e in range(self.checkpoints)
            for n in range(self.nodes)
        )

    @property
    def expected_opens(self) -> int:
        return self.nodes * self.checkpoint_files


@dataclass
class CheckpointStats:
    """Per-run checkpoint accounting (node 0 keeps the books)."""

    checkpoints_taken: int = 0
    restarts: int = 0
    lost_work_s: float = 0.0
    restore_bytes: int = 0
    bytes_written: int = 0
    raw_bytes: int = 0
    #: Application-visible cost of each completed checkpoint (barrier at
    #: compute end -> barrier after every node's dump landed).
    checkpoint_costs: list = field(default_factory=list)

    @property
    def checkpoint_cost_s(self) -> float:
        return sum(self.checkpoint_costs)

    @property
    def mean_cost_s(self) -> float:
        if not self.checkpoint_costs:
            return 0.0
        return self.checkpoint_cost_s / len(self.checkpoint_costs)

    def as_dict(self) -> dict:
        return {
            "checkpoints_taken": self.checkpoints_taken,
            "restarts": self.restarts,
            "lost_work_s": round(self.lost_work_s, 9),
            "restore_bytes": self.restore_bytes,
            "bytes_written": self.bytes_written,
            "raw_bytes": self.raw_bytes,
            "checkpoint_cost_s": round(self.checkpoint_cost_s, 9),
            "mean_cost_s": round(self.mean_cost_s, 9),
            "checkpoint_costs": [round(c, 9) for c in self.checkpoint_costs],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CheckpointStats":
        return cls(
            checkpoints_taken=int(d.get("checkpoints_taken", 0)),
            restarts=int(d.get("restarts", 0)),
            lost_work_s=float(d.get("lost_work_s", 0.0)),
            restore_bytes=int(d.get("restore_bytes", 0)),
            bytes_written=int(d.get("bytes_written", 0)),
            raw_bytes=int(d.get("raw_bytes", 0)),
            checkpoint_costs=[float(c) for c in d.get("checkpoint_costs", ())],
        )


@dataclass
class Checkpoint(Application):
    """Runnable checkpoint/restart skeleton."""

    config: CheckpointConfig = field(default_factory=CheckpointConfig)

    def __post_init__(self) -> None:
        self.name = "CHECKPOINT"
        cfg = self.config
        if cfg.nodes > self.machine.config.compute_nodes:
            raise ValueError(
                f"workload wants {cfg.nodes} nodes, machine has "
                f"{self.machine.config.compute_nodes}"
            )
        self.group = Collective(self.machine, list(range(cfg.nodes)))
        self._rng = self.machine.rngs.stream("checkpoint.compute")
        self.stats = CheckpointStats()
        #: Highest epoch known durable everywhere (-1 = none yet).
        self._last_complete = -1
        #: (epoch, attempt) pairs that saw a write failure on some node.
        self._failed: set = set()
        region = cfg.region_bytes
        for i in range(cfg.checkpoint_files):
            path = self._path(i)
            self.fs.ensure(path, size=cfg.nodes * region)
            self.fs.mark_burst_tier(path)

    @staticmethod
    def _path(index: int) -> str:
        return f"/ckpt/state{index}"

    # -- per-node program ------------------------------------------------------
    def node_processes(self):
        for node in range(self.config.nodes):
            yield node, self._node_main(node)

    def _node_main(self, node: int):
        cfg = self.config
        fs = self.fs
        env = self.machine.env
        node0 = node == 0
        node_mod = self.machine.nodes[node]
        region = cfg.region_bytes

        fds = []
        for i in range(cfg.checkpoint_files):
            fd = yield from fs.open(node, self._path(i), AccessMode.M_ASYNC)
            fds.append(fd)

        if cfg.restart:
            # Cold restart: restore epoch-0 state before computing.
            if node0:
                self.mark("restore")
            yield from self._restore(node, fds, 0)
            yield self.group.barrier()

        # Fault-free epoch loops are regular (synchronized compute + one
        # seek + chunked dump per epoch): offer the whole loop as one
        # fluid phase.  Restart runs carry restore state and stay
        # discrete; burst-tier files decline via ``fluid_ok`` when a
        # burst buffer is attached.
        servicer = None
        if not cfg.restart:
            servicer = getattr(getattr(fs, "fs", fs), "fluid", None)
        done = None
        if servicer is not None:

            def build_plan():
                ops = []
                for e in range(cfg.checkpoints):
                    jitter = 1.0 + cfg.compute_jitter * float(
                        self._rng.standard_normal()
                    )
                    ops.append(fl.compute(max(0.0, cfg.interval_s * jitter)))
                    ops.append(fl.barrier())
                    if node0:
                        ops.append(fl.mark(f"ckpt{e}"))
                    raw = cfg.raw_bytes(e, node)
                    if cfg.compress_cost_s_per_mb > 0:
                        ops.append(
                            fl.compute(raw / MB * cfg.compress_cost_s_per_mb)
                        )
                    fd = fds[e % cfg.checkpoint_files]
                    ops.append(fl.seek(fd, node * region))
                    left = cfg.wire_bytes(e, node)
                    while left > 0:
                        n = min(cfg.chunk_bytes, left)
                        ops.append(fl.write(fd, n))
                        left -= n
                    ops.append(fl.barrier())
                    if node0:
                        ops.append(fl.mark(f"done{e}"))
                return ops

            done = servicer.enroll(
                "checkpoint",
                cfg.nodes,
                node,
                fs,
                probe=[
                    op
                    for fd in fds
                    for op in (fl.seek(fd, 0), fl.write(fd, cfg.chunk_bytes))
                ],
                build=build_plan,
                mod=node_mod,
            )
        if done is not None:
            marks = yield done
            if node0:
                times = dict(marks)
                for e in range(cfg.checkpoints):
                    start = times[f"ckpt{e}"]
                    self.mark(f"ckpt{e}", at=start)
                    self.stats.checkpoints_taken += 1
                    self.stats.checkpoint_costs.append(times[f"done{e}"] - start)
                self._last_complete = cfg.checkpoints - 1
            for e in range(cfg.checkpoints):
                self.stats.bytes_written += cfg.wire_bytes(e, node)
                self.stats.raw_bytes += cfg.raw_bytes(e, node)
            yield self.group.barrier()
            for fd in fds:
                yield from fs.close(node, fd)
            if node0:
                self.mark("end")
            return

        epoch = 0
        attempt = 0
        while epoch < cfg.checkpoints:
            if node0:
                epoch_start = env.now
            jitter = 1.0 + cfg.compute_jitter * float(self._rng.standard_normal())
            yield from node_mod.compute(max(0.0, cfg.interval_s * jitter))
            yield self.group.barrier()
            if node0:
                self.mark(f"ckpt{epoch}")
                dump_start = env.now

            raw = cfg.raw_bytes(epoch, node)
            wire = cfg.wire_bytes(epoch, node)
            if cfg.compress_cost_s_per_mb > 0:
                yield from node_mod.compute(raw / MB * cfg.compress_cost_s_per_mb)
            fd = fds[epoch % cfg.checkpoint_files]
            try:
                yield from fs.seek(node, fd, node * region)
                left = wire
                while left > 0:
                    n = min(cfg.chunk_bytes, left)
                    yield from fs.write(node, fd, n)
                    left -= n
            except PFSError:
                # A fault surfaced into this node's dump (retry budget
                # exhausted, etc.): flag the epoch; everyone rolls back
                # together after the barrier.
                self._failed.add((epoch, attempt))
            yield self.group.barrier()

            if (epoch, attempt) in self._failed:
                if node0:
                    self.stats.restarts += 1
                    self.stats.lost_work_s += env.now - epoch_start
                yield from self._restore(node, fds, self._last_complete)
                yield self.group.barrier()
                attempt += 1
                if attempt > cfg.max_restarts:
                    raise RuntimeError(
                        f"checkpoint epoch {epoch} failed {attempt} times"
                    )
                continue  # recompute the interval, redo the epoch

            if node0:
                self._last_complete = epoch
                self.stats.checkpoints_taken += 1
                self.stats.checkpoint_costs.append(env.now - dump_start)
            # Every node contributes its own dump volume exactly once.
            self.stats.bytes_written += wire
            self.stats.raw_bytes += raw
            epoch += 1
            attempt = 0

        yield self.group.barrier()
        for fd in fds:
            yield from fs.close(node, fd)
        if node0:
            self.mark("end")

    def _restore(self, node: int, fds: list, epoch: int):
        """Re-read this node's state from the last complete checkpoint.

        ``epoch < 0`` (a failure before any checkpoint completed) means
        restart-from-initial-conditions: nothing to read.
        """
        if epoch < 0:
            return
        cfg = self.config
        fs = self.fs
        fd = fds[epoch % cfg.checkpoint_files]
        wire = cfg.wire_bytes(epoch, node)
        yield from fs.seek(node, fd, node * cfg.region_bytes)
        left = wire
        while left > 0:
            n = min(cfg.chunk_bytes, left)
            got = yield from fs.read(node, fd, n)
            self.stats.restore_bytes += got
            left -= n
