"""ESCAT with the real physics in the loop (miniature scale).

The plain :class:`~repro.apps.escat.Escat` skeleton reproduces the
paper's I/O *shape* with modelled compute.  This variant runs the actual
Schwinger-style computation of :mod:`repro.science.scattering` through
the same four-phase I/O structure, with content tracking on:

1. node 0 "reads" the problem definition (model parameters);
2. each node computes its share of the energy-independent quadrature
   table and writes its real bytes to the staging file at its
   calculated offset (the checkpoint);
3. every node reloads its slab, the table is reassembled bit-exact, and
   the energy-dependent solve runs from the *reloaded* data;
4. node 0 writes the cross sections to the output file.

The run returns both the trace and the physics, and the physics is
verified against a direct in-memory computation — closing the loop the
paper's developers cared about: the staged data really is reusable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..science.scattering import (
    QuadratureTable,
    ScatteringModel,
    build_quadrature,
    cross_sections,
)
from .base import Application, Collective

__all__ = ["ScienceEscatConfig", "ScienceEscat"]


@dataclass(frozen=True)
class ScienceEscatConfig:
    """Miniature physical workload."""

    nodes: int = 4
    channels: int = 4
    quadrature_points: int = 64
    energies: tuple[float, ...] = (0.2, 0.5, 0.9, 1.4)
    #: Simulated seconds charged per quadrature point computed.
    compute_per_point_s: float = 0.05

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if self.quadrature_points % self.nodes:
            raise ValueError("nodes must divide quadrature_points")
        if self.channels < 1:
            raise ValueError("channels must be >= 1")


@dataclass
class ScienceEscat(Application):
    """Runnable physics-carrying ESCAT (needs a content-tracking FS)."""

    config: ScienceEscatConfig = field(default_factory=ScienceEscatConfig)

    def __post_init__(self) -> None:
        self.name = "ESCAT-science"
        cfg = self.config
        if not self.fs.track_content:
            raise ValueError("ScienceEscat needs track_content=True")
        if cfg.nodes > self.machine.config.compute_nodes:
            raise ValueError("workload larger than machine")
        self.group = Collective(self.machine, list(range(cfg.nodes)))
        self.model = ScatteringModel(
            strengths=tuple(0.8 / (1 + i) for i in range(cfg.channels)),
            ranges=tuple(1.0 + 0.25 * i for i in range(cfg.channels)),
        )
        # The full table, computed once up front so per-node slabs can be
        # cut from it deterministically (each node "computes" its slab).
        self._table = build_quadrature(self.model, n_points=cfg.quadrature_points)
        self._blob = self._table.to_bytes()
        self._header = 16  # channel/point counts + grid/weights prefix
        self._prefix = 16 + 2 * 8 * cfg.quadrature_points
        self.fs.ensure("/escat-sci/input", size=4096)
        self.fs.ensure("/escat-sci/quadrature", size=len(self._blob))
        #: Filled at the end of the run: sigma[e, channel].
        self.result: np.ndarray | None = None

    def _slab(self, node: int) -> tuple[int, bytes]:
        """(file offset, bytes) of the node's share of the sample data.

        Node 0 also owns the header + grid/weights prefix; the sample
        block divides evenly across nodes.
        """
        samples = self._blob[self._prefix :]
        share = len(samples) // self.config.nodes
        start = node * share
        end = start + share if node < self.config.nodes - 1 else len(samples)
        if node == 0:
            return 0, self._blob[: self._prefix] + samples[:share]
        return self._prefix + start, samples[start:end]

    def node_processes(self):
        for node in range(self.config.nodes):
            yield node, self._node_main(node)

    def _node_main(self, node: int):
        cfg = self.config
        fs = self.fs
        mod = self.machine.nodes[node]
        node0 = node == 0

        # Phase 1: compulsory input (the model definition), broadcast.
        if node0:
            self.mark("phase1")
            fd = yield from fs.open(node, "/escat-sci/input")
            yield from fs.read(node, fd, 2048)
            yield from fs.close(node, fd)
            yield from self.group.broadcast(node, 0, 2048)
        else:
            yield from self.group.broadcast(node, 0, 0)

        # Phase 2: compute + checkpoint this node's quadrature slab.
        if node0:
            self.mark("phase2")
        yield from mod.compute(
            cfg.compute_per_point_s * cfg.quadrature_points / cfg.nodes
        )
        offset, payload = self._slab(node)
        fd = yield from fs.open(node, "/escat-sci/quadrature")
        yield self.group.barrier()
        yield from fs.seek(node, fd, offset)
        yield from fs.write(node, fd, len(payload), data=payload)

        # Phase 3: reload own slab; node 0 reassembles and solves.
        yield self.group.barrier()
        if node0:
            self.mark("phase3")
        yield from fs.seek(node, fd, offset)
        count, data = yield from fs.read(node, fd, len(payload), data_out=True)
        assert count == len(payload) and bytes(data) == payload, "reload mismatch"
        yield from fs.close(node, fd)
        yield from self.group.gather(node, 0, len(payload))

        if node0:
            # Whole-file reload (every slab, any writer) -> physics.
            rfd = yield from fs.open(node, "/escat-sci/quadrature")
            total, blob = yield from fs.read(
                node, rfd, len(self._blob), data_out=True
            )
            yield from fs.close(node, rfd)
            assert total == len(self._blob)
            table = QuadratureTable.from_bytes(bytes(blob))
            sigma = cross_sections(self.model, table, np.asarray(cfg.energies))
            self.result = sigma

            # Phase 4: write the cross sections out.
            self.mark("phase4")
            ofd = yield from fs.open(node, "/escat-sci/output", create=True)
            out = sigma.tobytes()
            yield from fs.write(node, ofd, len(out), data=out)
            yield from fs.close(node, ofd)
            self.mark("end")

    def reference_result(self) -> np.ndarray:
        """The same physics computed directly in memory (for verification)."""
        return cross_sections(
            self.model, self._table, np.asarray(self.config.energies)
        )
