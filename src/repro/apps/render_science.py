"""RENDER with the real rendering in the loop (miniature scale).

The gateway + renderer structure of Figure 1 carrying genuine data:

* the fractal terrain (heightfield + false-color map) is staged in the
  simulated file system; the gateway reads it with large requests and
  broadcasts it;
* per frame, the gateway reads a packed camera record from the views
  file (real bytes it wrote at setup), broadcasts the view, and each
  renderer ray-marches its contiguous *column band* of the frame;
* the gateway gathers the bands, assembles the frame, writes the real
  image bytes to the output file — and the assembled frame is verified
  pixel-identical to a single-node render of the same view.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from ..science.rendering import Camera, color_map, diamond_square, render_view
from .base import Application, Collective

__all__ = ["ScienceRenderConfig", "ScienceRender"]

_VIEW_FMT = "<4d"  # x, y, height, heading
_VIEW_BYTES = struct.calcsize(_VIEW_FMT)


@dataclass(frozen=True)
class ScienceRenderConfig:
    """A miniature flyby with real frames."""

    renderers: int = 4
    frames: int = 3
    terrain_exponent: int = 7
    width: int = 160
    rows: int = 128
    seed: int = 11
    #: Simulated render compute per band per frame.
    band_compute_s: float = 0.4

    def __post_init__(self) -> None:
        if self.renderers < 1:
            raise ValueError("renderers must be >= 1")
        if self.frames < 1:
            raise ValueError("frames must be >= 1")
        if self.width % self.renderers:
            raise ValueError("renderers must divide width")

    def cameras(self) -> list[Camera]:
        return [
            Camera(
                x=12.0 + 7.0 * i,
                y=18.0 + 3.0 * i,
                height=1.5,
                heading=0.2 * i,
            )
            for i in range(self.frames)
        ]


@dataclass
class ScienceRender(Application):
    """Runnable real-frame flyby (gateway = node 0, needs content FS)."""

    config: ScienceRenderConfig = field(default_factory=ScienceRenderConfig)

    def __post_init__(self) -> None:
        self.name = "RENDER-science"
        cfg = self.config
        if not self.fs.track_content:
            raise ValueError("ScienceRender needs track_content=True")
        total = cfg.renderers + 1
        if total > self.machine.config.compute_nodes:
            raise ValueError("workload larger than machine")
        self.group = Collective(self.machine, list(range(total)))
        self.height = diamond_square(cfg.terrain_exponent, seed=cfg.seed)
        self.colors = color_map(self.height)
        self._terrain_blob = self.height.tobytes() + self.colors.tobytes()
        views = b"".join(
            struct.pack(_VIEW_FMT, c.x, c.y, c.height, c.heading)
            for c in cfg.cameras()
        )
        f = self.fs.ensure("/render-sci/terrain", size=len(self._terrain_blob))
        f.write_content(0, self._terrain_blob)
        v = self.fs.ensure("/render-sci/views", size=len(views))
        v.write_content(0, views)
        #: Assembled frames, filled by the gateway as the run proceeds.
        self.rendered: list[np.ndarray] = []
        self._band_box: dict[int, np.ndarray] = {}
        self._current_view: Camera | None = None

    def node_processes(self):
        yield 0, self._gateway()
        for node in range(1, self.config.renderers + 1):
            yield node, self._renderer(node)

    # -- gateway ----------------------------------------------------------------
    def _gateway(self):
        cfg = self.config
        fs = self.fs
        node = 0
        self.mark("init")
        tfd = yield from fs.open(node, "/render-sci/terrain")
        got = 0
        chunk = 1 << 20
        while got < len(self._terrain_blob):
            got += yield from fs.read(
                node, tfd, min(chunk, len(self._terrain_blob) - got)
            )
        assert got == len(self._terrain_blob)
        yield from self.group.broadcast(node, 0, len(self._terrain_blob))

        vfd = yield from fs.open(node, "/render-sci/views")
        self.mark("render")
        for frame_no in range(cfg.frames):
            count, raw = yield from fs.read(node, vfd, _VIEW_BYTES, data_out=True)
            assert count == _VIEW_BYTES
            x, y, h, heading = struct.unpack(_VIEW_FMT, bytes(raw))
            self._current_view = Camera(x=x, y=y, height=h, heading=heading)
            yield from self.group.broadcast(node, 0, _VIEW_BYTES)
            # Renderers work; bands return through the gather.
            band_bytes = cfg.rows * (cfg.width // cfg.renderers) * 3
            yield from self.group.gather(node, 0, band_bytes)
            frame = np.concatenate(
                [self._band_box[b] for b in range(cfg.renderers)], axis=1
            )
            self._band_box.clear()
            self.rendered.append(frame)
            payload = frame.tobytes()
            ofd = yield from fs.open(
                node, f"/render-sci/frame{frame_no:02d}", create=True
            )
            yield from fs.write(node, ofd, len(payload), data=payload)
            yield from fs.close(node, ofd)
        yield from fs.close(node, vfd)
        yield from fs.close(node, tfd)
        self.mark("end")

    # -- renderers ---------------------------------------------------------------
    def _renderer(self, node: int):
        cfg = self.config
        mod = self.machine.nodes[node]
        band = cfg.width // cfg.renderers
        lo = (node - 1) * band
        yield from self.group.broadcast(node, 0, 0)  # terrain arrives
        for _ in range(cfg.frames):
            yield from self.group.broadcast(node, 0, 0)  # view arrives
            camera = self._current_view
            assert camera is not None
            yield from mod.compute(cfg.band_compute_s)
            self._band_box[node - 1] = render_view(
                self.height,
                self.colors,
                camera,
                width=cfg.width,
                rows=cfg.rows,
                column_range=(lo, lo + band),
            )
            yield from self.group.gather(node, 0, 0)

    # -- verification -------------------------------------------------------------
    def reference_frame(self, frame_no: int) -> np.ndarray:
        """Single-node render of the same view (for verification)."""
        cam = self.config.cameras()[frame_no]
        return render_view(
            self.height, self.colors, cam,
            width=self.config.width, rows=self.config.rows,
        )
