"""Convert external trace records to and from Pablo traces.

The import side parses JSONL or CSV files of :mod:`schema
<repro.ingest.schema>` records, resolves implicit offsets with POSIX
file-cursor semantics, assigns file ids, and produces an ordinary
:class:`repro.pablo.trace.Trace` — from there the whole toolchain
(characterize, compare, replay, campaigns) applies unchanged.

The export side writes any captured Trace back out in the same schema,
carrying explicit ``file_id`` and ``offset`` per record, so
``export -> ingest`` is bit-exact: the re-imported trace has the same
content hash as the original.  Resilience rows (FAULT/RETRY/DEGRADED)
describe the run, not the application, and are not exported.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Iterable, Iterator, Optional

from ..pablo.events import Op
from ..pablo.trace import Trace
from .schema import Record, SchemaError, canonical_op_name

__all__ = [
    "records_to_trace",
    "trace_to_records",
    "trace_from_jsonl",
    "trace_from_csv",
    "export_trace",
    "load_trace",
]

#: Ops replayed from external traces (everything but resilience rows).
_REPLAYABLE = frozenset(int(op) for op in Op if op < Op.FAULT)

#: CSV column order for exports (imports accept any order).
_CSV_FIELDS = ("timestamp", "rank", "op", "file", "offset", "size", "duration", "file_id")


# -- import ------------------------------------------------------------------

def _iter_jsonl(text: str) -> Iterator[Record]:
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SchemaError(lineno, f"invalid JSON: {exc.msg}") from None
        if not isinstance(row, dict):
            raise SchemaError(lineno, f"expected an object, got {type(row).__name__}")
        yield Record.from_mapping(row, lineno)


def _iter_csv(text: str) -> Iterator[Record]:
    reader = csv.DictReader(io.StringIO(text))
    if reader.fieldnames is None:
        return
    fields = {name.strip().lower() for name in reader.fieldnames}
    missing = {"rank", "op", "file", "timestamp"} - fields
    if missing:
        raise SchemaError(1, f"header missing required columns {sorted(missing)}")
    for row in reader:
        lineno = reader.line_num
        cleaned = {
            (k or "").strip().lower(): (v.strip() if isinstance(v, str) else v)
            for k, v in row.items()
        }
        if cleaned.get(None) or None in row and row[None]:
            raise SchemaError(lineno, "row has more columns than the header")
        yield Record.from_mapping(cleaned, lineno)


def records_to_trace(
    records: Iterable[Record],
    application: str = "ingested",
    comment: str = "",
) -> Trace:
    """Normalize validated records into a Pablo trace.

    Records are taken in file order (external tools emit per-rank streams
    already time-sorted; replay re-sorts per node anyway).  Offsets absent
    from the input are resolved against a per-(rank, file) cursor exactly
    as a POSIX file descriptor would move; seek sizes become seek
    *distances* per the Pablo convention.  File ids honour an explicit
    ``file_id`` column (our own exports) and are otherwise assigned in
    order of first appearance.
    """
    trace = Trace(application=application, comment=comment)
    ids: dict[str, int] = {}
    used: set[int] = set()
    cursors: dict[tuple[int, int], int] = {}
    pending: dict[tuple[int, int], list[tuple[int, int]]] = {}
    max_rank = -1

    def file_id_for(rec: Record) -> int:
        fid = ids.get(rec.file)
        if fid is not None:
            if rec.file_id is not None and rec.file_id != fid:
                raise SchemaError(
                    rec.line,
                    f"file {rec.file!r} bound to id {fid}, record says {rec.file_id}",
                )
            return fid
        if rec.file_id is not None:
            fid = rec.file_id
            if fid in used:
                raise SchemaError(
                    rec.line, f"file_id {fid} already used by another file"
                )
        else:
            fid = 1
            while fid in used:
                fid += 1
        ids[rec.file] = fid
        used.add(fid)
        trace.file_names[fid] = rec.file
        return fid

    for rec in records:
        fid = file_id_for(rec)
        key = (rec.rank, fid)
        max_rank = max(max_rank, rec.rank)
        cursor = cursors.get(key, 0)
        offset, nbytes = rec.offset, rec.size

        if rec.op in (Op.READ, Op.WRITE, Op.AREAD):
            if offset is None:
                offset = cursor
            cursors[key] = offset + nbytes
            if rec.op is Op.AREAD:
                pending.setdefault(key, []).append((offset, nbytes))
        elif rec.op is Op.SEEK:
            # offset is the target (validated non-None); nbytes records the
            # distance moved unless the source already supplied one.
            if nbytes == 0:
                nbytes = abs(offset - cursor)
            cursors[key] = offset
        elif rec.op is Op.IOWAIT:
            queue = pending.get(key)
            if queue and rec.offset is None:
                offset, matched = queue.pop(0)
                if nbytes == 0:
                    nbytes = matched
        elif rec.op is Op.OPEN:
            cursors.setdefault(key, 0)

        trace.add(
            rec.timestamp,
            rec.rank,
            rec.op,
            fid,
            offset if offset is not None else 0,
            nbytes,
            rec.duration,
        )

    trace.nodes = max_rank + 1 if max_rank >= 0 else 0
    return trace


def trace_from_jsonl(text: str, application: str = "ingested") -> Trace:
    """Parse JSON Lines records into a trace."""
    return records_to_trace(_iter_jsonl(text), application=application)


def trace_from_csv(text: str, application: str = "ingested") -> Trace:
    """Parse CSV records into a trace."""
    return records_to_trace(_iter_csv(text), application=application)


def load_trace(path: str, fmt: str = "auto", application: Optional[str] = None) -> Trace:
    """Load a trace from ``path`` in any supported container.

    ``fmt`` is ``'jsonl'``, ``'csv'``, ``'sddf'`` or ``'auto'`` (by file
    extension; unknown extensions are treated as SDDF, our native form).
    """
    path = str(path)
    if fmt == "auto":
        lower = path.lower()
        if lower.endswith((".jsonl", ".ndjson", ".json")):
            fmt = "jsonl"
        elif lower.endswith(".csv"):
            fmt = "csv"
        else:
            fmt = "sddf"
    if fmt == "sddf":
        trace = Trace.load(path)
        if application:
            trace.application = application
        return trace
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    name = application or "ingested"
    if fmt == "jsonl":
        return trace_from_jsonl(text, application=name)
    if fmt == "csv":
        return trace_from_csv(text, application=name)
    raise ValueError(f"unknown trace format {fmt!r}; pick jsonl/csv/sddf/auto")


# -- export ------------------------------------------------------------------

def trace_to_records(trace: Trace) -> Iterator[dict]:
    """Yield one schema mapping per replayable event (resilience rows —
    FAULT/RETRY/DEGRADED — are documentation of the run, not workload,
    and are skipped)."""
    names = trace.file_names
    for ts, node, op, fid, offset, nbytes, dur in trace.events.tolist():
        if int(op) not in _REPLAYABLE:
            continue
        yield {
            "timestamp": float(ts),
            "rank": int(node),
            "op": canonical_op_name(Op(int(op))),
            "file": names.get(int(fid), f"/file{int(fid)}"),
            "offset": int(offset),
            "size": int(nbytes),
            "duration": float(dur),
            "file_id": int(fid),
        }


def export_trace(trace: Trace, path: str, fmt: str = "auto") -> int:
    """Write ``trace`` to ``path`` as JSONL or CSV schema records;
    returns the number of records written."""
    path = str(path)
    if fmt == "auto":
        lower = path.lower()
        if lower.endswith(".csv"):
            fmt = "csv"
        elif lower.endswith((".jsonl", ".ndjson", ".json")):
            fmt = "jsonl"
        else:
            raise ValueError(
                f"cannot infer export format from {path!r}; pass fmt='jsonl' or 'csv'"
            )
    count = 0
    with open(path, "w", encoding="utf-8", newline="") as fh:
        if fmt == "jsonl":
            for rec in trace_to_records(trace):
                fh.write(json.dumps(rec, separators=(", ", ": ")) + "\n")
                count += 1
        elif fmt == "csv":
            writer = csv.DictWriter(fh, fieldnames=_CSV_FIELDS)
            writer.writeheader()
            for rec in trace_to_records(trace):
                writer.writerow({k: _csv_cell(rec[k]) for k in _CSV_FIELDS})
                count += 1
        else:
            raise ValueError(f"unknown export format {fmt!r}; pick jsonl/csv")
    return count


def _csv_cell(value):
    """Render floats with full precision so a CSV round-trip is exact."""
    return repr(value) if isinstance(value, float) else value
