"""The external trace record schema and its validation.

``repro.ingest`` accepts I/O trace records in a deliberately small
common-core schema — the intersection of what Darshan DXT segments,
Recorder POSIX logs and our own Pablo exports all carry:

=============  =========  =====================================================
field          required   meaning
=============  =========  =====================================================
``rank``       yes        issuing process rank (maps to a compute node)
``op``         yes        operation name; aliases accepted, see `OP_ALIASES`
``file``       yes        file path (string); ranks share a namespace
``timestamp``  yes        operation start time in seconds (any epoch)
``size``       no         bytes transferred (seek: distance); default 0
``offset``     no         absolute byte offset; resolved from a per-(rank,
                          file) cursor when absent, POSIX-style
``duration``   no         seconds the call took; default 0
``file_id``    no         explicit file id (our own exports carry it so a
                          round-trip is bit-exact); assigned when absent
=============  =========  =====================================================

Containers: JSON Lines (one object per line) or CSV (header row names the
columns, any order).  Validation failures raise :class:`SchemaError`
naming the offending line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..pablo.events import Op

__all__ = ["SchemaError", "Record", "OP_ALIASES", "canonical_op_name", "parse_op"]


class SchemaError(ValueError):
    """An external trace record that does not fit the ingest schema."""

    def __init__(self, line: int, message: str):
        super().__init__(f"line {line}: {message}")
        #: 1-based line number in the source file.
        self.line = line


#: Canonical export name for each replayable operation.
CANONICAL_NAMES: dict[Op, str] = {
    Op.OPEN: "open",
    Op.CLOSE: "close",
    Op.READ: "read",
    Op.WRITE: "write",
    Op.SEEK: "seek",
    Op.AREAD: "aread",
    Op.IOWAIT: "iowait",
    Op.LSIZE: "lsize",
    Op.FLUSH: "flush",
}

#: Accepted operation spellings -> Op.  Covers the POSIX/stdio families
#: Darshan and Recorder emit plus NX/PFS names from our own exports.
OP_ALIASES: dict[str, Op] = {
    # opens
    "open": Op.OPEN, "open64": Op.OPEN, "openat": Op.OPEN, "fopen": Op.OPEN,
    "fopen64": Op.OPEN, "creat": Op.OPEN, "create": Op.OPEN, "gopen": Op.OPEN,
    # closes
    "close": Op.CLOSE, "fclose": Op.CLOSE,
    # reads
    "read": Op.READ, "pread": Op.READ, "pread64": Op.READ, "fread": Op.READ,
    "readv": Op.READ, "preadv": Op.READ, "cread": Op.READ,
    # writes
    "write": Op.WRITE, "pwrite": Op.WRITE, "pwrite64": Op.WRITE,
    "fwrite": Op.WRITE, "writev": Op.WRITE, "pwritev": Op.WRITE,
    "cwrite": Op.WRITE,
    # seeks
    "seek": Op.SEEK, "lseek": Op.SEEK, "lseek64": Op.SEEK, "fseek": Op.SEEK,
    "fseeko": Op.SEEK,
    # async reads + completion
    "aread": Op.AREAD, "iread": Op.AREAD, "aio_read": Op.AREAD,
    "asynchread": Op.AREAD,
    "iowait": Op.IOWAIT, "iodone": Op.IOWAIT, "aio_wait": Op.IOWAIT,
    "aio_suspend": Op.IOWAIT, "i/o wait": Op.IOWAIT,
    # metadata size query
    "lsize": Op.LSIZE, "stat": Op.LSIZE, "fstat": Op.LSIZE,
    "stat64": Op.LSIZE, "fstat64": Op.LSIZE,
    # flushes
    "flush": Op.FLUSH, "fflush": Op.FLUSH, "fsync": Op.FLUSH,
    "fdatasync": Op.FLUSH, "forflush": Op.FLUSH,
    # Darshan module-prefixed counter names (POSIX_READ, MPIIO_WRITE, ...)
    "posix_open": Op.OPEN, "posix_close": Op.CLOSE, "posix_read": Op.READ,
    "posix_write": Op.WRITE, "posix_seek": Op.SEEK, "posix_stat": Op.LSIZE,
    "posix_fsync": Op.FLUSH,
    "mpiio_open": Op.OPEN, "mpiio_close": Op.CLOSE, "mpiio_read": Op.READ,
    "mpiio_write": Op.WRITE, "mpiio_seek": Op.SEEK, "mpiio_sync": Op.FLUSH,
}


def canonical_op_name(op: Op) -> str:
    """The name :func:`repro.ingest.export_trace` writes for ``op``."""
    return CANONICAL_NAMES[Op(op)]


def parse_op(name: str, line: int) -> Op:
    """Resolve an external op spelling; raises :class:`SchemaError`."""
    try:
        return OP_ALIASES[str(name).strip().lower()]
    except KeyError:
        raise SchemaError(
            line,
            f"unknown op {name!r} (known: {sorted(set(OP_ALIASES))})",
        ) from None


@dataclass
class Record:
    """One validated external trace record."""

    rank: int
    op: Op
    file: str
    timestamp: float
    size: int = 0
    offset: Optional[int] = None
    duration: float = 0.0
    file_id: Optional[int] = None
    #: Source line (diagnostics only).
    line: int = 0

    @classmethod
    def from_mapping(cls, row: dict, line: int) -> "Record":
        """Validate one raw mapping (parsed JSON object / CSV row)."""
        def need(key):
            value = row.get(key)
            if value is None or value == "":
                raise SchemaError(line, f"missing required field {key!r}")
            return value

        def integer(key, value, minimum=0):
            try:
                out = int(value)
            except (TypeError, ValueError):
                raise SchemaError(line, f"{key} must be an integer, got {value!r}") from None
            if out < minimum:
                raise SchemaError(line, f"{key} must be >= {minimum}, got {out}")
            return out

        def floating(key, value, minimum=None):
            try:
                out = float(value)
            except (TypeError, ValueError):
                raise SchemaError(line, f"{key} must be a number, got {value!r}") from None
            if minimum is not None and out < minimum:
                raise SchemaError(line, f"{key} must be >= {minimum}, got {out}")
            return out

        op = parse_op(need("op"), line)
        path = str(need("file"))
        offset = row.get("offset")
        offset = None if offset in (None, "") else integer("offset", offset)
        if op is Op.SEEK and offset is None:
            raise SchemaError(line, "seek records require an offset (the target)")
        size = row.get("size")
        size = 0 if size in (None, "") else integer("size", size)
        duration = row.get("duration")
        duration = 0.0 if duration in (None, "") else floating("duration", duration, 0.0)
        file_id = row.get("file_id")
        file_id = None if file_id in (None, "") else integer("file_id", file_id, 1)
        return cls(
            rank=integer("rank", need("rank")),
            op=op,
            file=path,
            timestamp=floating("timestamp", need("timestamp")),
            size=size,
            offset=offset,
            duration=duration,
            file_id=file_id,
            line=line,
        )
