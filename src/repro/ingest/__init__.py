"""repro.ingest — bring your own trace.

Imports external I/O trace records (a documented JSONL/CSV common-core
schema covering what Darshan and Recorder logs carry: rank, op, file,
offset, size, timestamp) and our own exported traces, normalizes them
into Pablo :class:`~repro.pablo.trace.Trace` objects, and exports
captured traces back out in the same schema.  Ingested traces replay
through the simulator as the ``trace`` application and join campaigns as
a sweep axis.
"""

from .convert import (
    export_trace,
    load_trace,
    records_to_trace,
    trace_from_csv,
    trace_from_jsonl,
    trace_to_records,
)
from .schema import OP_ALIASES, Record, SchemaError, canonical_op_name, parse_op

__all__ = [
    "OP_ALIASES",
    "Record",
    "SchemaError",
    "canonical_op_name",
    "export_trace",
    "load_trace",
    "parse_op",
    "records_to_trace",
    "trace_from_csv",
    "trace_from_jsonl",
    "trace_to_records",
]
